"""Zero-copy label snapshots and the mmap/sharded serving engines.

The labels of a built IS-LABEL index are static after construction
(§4–§6) — exactly the shape that serves heavy read traffic well.  The
stream format in :mod:`repro.core.serialization` is engine-independent but
pays a per-entry parse on every load; this module defines the *serving*
artifact instead: an on-disk **snapshot** that is nothing but a header, a
JSON table of contents and 64-byte-aligned raw dumps of the arrays a
frozen :class:`~repro.core.fastlabels.PackedEngineBase` already holds —
the packed ``int64`` label buffers (keys/indptr/ancestors/distances plus
the pre-extracted seed arrays; out/in twins for directed), the frozen
``G_k`` CSR arrays, and the optional all-pairs table.  Loading is
``np.memmap`` per section: no per-entry parsing, page-cache sharing across
processes, and labels fault in lazily as queries touch them.

Two serving engines adopt snapshots through the same
:class:`~repro.core.fastlabels.LabelTable` view struct the heap engines
use (heap-packed or mmap-backed are one code path):

* ``"mmap"`` — single-file snapshot, every section a lazily faulted
  memmap.  The all-pairs table maps copy-on-write (``mode="c"``), so each
  process can keep filling rows privately while clean pages stay shared.
* ``"sharded"`` — a snapshot *directory*: vertex-id-range shards of the
  label arrays in separate files plus one small shared file holding the
  replicated ``G_k``/table sections.  A worker process only maps (and
  faults) the shard files its queries route to; Equation 1 is answered by
  routing the query's two label slices to the owning shards.

Both engines also work without a snapshot on disk: constructed from live
entry lists (``ISLabelIndex.build(..., engine="mmap")``) they heap-freeze,
spill a temporary snapshot, and re-adopt it — which is exactly the
save→serve roundtrip, and what the cross-engine property suites exercise.

See ``docs/ARCHITECTURE.md`` for the byte-level layout and versioning
rules.
"""

from __future__ import annotations

import atexit
import json
import os
import shutil
import struct
import tempfile
import zlib
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.engines import (
    CAP_LOCAL,
    CAP_SHARDED,
    CAP_SNAPSHOT,
    DIRECTED,
    UNDIRECTED,
    register_engine,
)
from repro.core.fastdirected import DirectedFastEngine
from repro.core.fastlabels import FastEngine, FlatLabels, LabelTable
from repro.errors import StorageError
from repro.graph.csr import CSRDiGraph, CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "KIND_UNDIRECTED",
    "KIND_DIRECTED",
    "is_snapshot_path",
    "write_snapshot",
    "open_snapshot",
    "Snapshot",
    "SnapshotLabels",
    "ShardedLabelTable",
    "MmapEngine",
    "ShardedEngine",
    "DirectedMmapEngine",
    "DirectedShardedEngine",
]

SNAPSHOT_MAGIC = b"ISNP"
SNAPSHOT_VERSION = 1
#: File inside a sharded snapshot directory naming the shard layout.
MANIFEST_NAME = "manifest.json"

KIND_UNDIRECTED = 0
KIND_DIRECTED = 1

#: Every section's byte offset is a multiple of this (covers any SIMD/page
#: alignment an mmap consumer could want; int64/float64 need only 8).
_ALIGN = 64

#: magic, version, kind, flags, toc offset, toc length.
_HEADER = struct.Struct("<4sHBBqq")

#: The seven flat arrays of one label table, in serialization order.
_FLAT_FIELDS = (
    "keys",
    "indptr",
    "anc",
    "dist",
    "seed_indptr",
    "seed_ids",
    "seed_dists",
)

#: Default shard count when a sharded engine spills its own snapshot.
DEFAULT_SHARDS = 4

# ----------------------------------------------------------------------
# Temp-spill bookkeeping: every spilled snapshot path is tracked here so
# interpreter exit (atexit) reaps whatever GC / explicit close() missed —
# an engine that is never invalidated must not leave repro-snap-* files
# behind in the system temp directory.
# ----------------------------------------------------------------------
_LIVE_SPILLS: set = set()


def _remove_spill_path(path: str) -> None:
    """Best-effort removal of one spilled snapshot file or directory."""
    if os.path.isdir(path):
        shutil.rmtree(path, ignore_errors=True)
    else:
        try:
            os.unlink(path)
        except OSError:
            pass


@atexit.register
def _reap_spills() -> None:  # pragma: no cover - exercised via subprocess
    for path in list(_LIVE_SPILLS):
        _remove_spill_path(path)
    _LIVE_SPILLS.clear()


# ----------------------------------------------------------------------
# Low-level file format: header + aligned sections + trailing JSON TOC
# ----------------------------------------------------------------------
def _write_section_file(
    path: str,
    kind: int,
    meta: Dict,
    sections: Dict[str, np.ndarray],
    checksum: bool = False,
) -> int:
    """Write one snapshot file; returns bytes written.

    ``sections`` maps name -> array; arrays are dumped raw (C order,
    native little-endian dtypes) at 64-byte-aligned offsets, and the
    closing TOC records ``{name: {dtype, shape, offset}}`` plus ``meta``.
    ``checksum=True`` adds a ``crc32`` per TOC entry, verified lazily on
    the section's first map (:meth:`SnapshotFile.array`).
    """
    toc_sections = []
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, kind, 0, 0, 0))
        for name, arr in sections.items():
            arr = np.ascontiguousarray(arr)
            pos = fh.tell()
            pad = (-pos) % _ALIGN
            if pad:
                fh.write(b"\0" * pad)
            offset = fh.tell()
            arr.tofile(fh)
            entry = {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
            if checksum:
                entry["crc32"] = zlib.crc32(memoryview(arr).cast("B"))
            toc_sections.append(entry)
        toc_offset = fh.tell()
        blob = json.dumps(
            {"meta": meta, "sections": toc_sections}, sort_keys=True
        ).encode("utf-8")
        fh.write(blob)
        total = fh.tell()
        fh.seek(0)
        fh.write(
            _HEADER.pack(
                SNAPSHOT_MAGIC, SNAPSHOT_VERSION, kind, 0, toc_offset, len(blob)
            )
        )
    return total


class SnapshotFile:
    """One snapshot file: parsed header/TOC plus per-section memmaps."""

    __slots__ = ("path", "kind", "meta", "_toc", "_verified")

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise StorageError(
                    f"{path}: truncated or empty snapshot "
                    f"(file is {os.path.getsize(self.path)} bytes, "
                    f"header needs {_HEADER.size})"
                )
            magic, version, kind, _flags, toc_offset, toc_len = _HEADER.unpack(
                header
            )
            if magic != SNAPSHOT_MAGIC:
                raise StorageError(f"{path}: bad snapshot magic {magic!r}")
            if version != SNAPSHOT_VERSION:
                raise StorageError(
                    f"{path}: unsupported snapshot version {version}"
                )
            if toc_len <= 0:
                # The header is patched last; a zeroed TOC pointer means
                # the writer died mid-dump.
                raise StorageError(f"{path}: truncated snapshot (no TOC)")
            fh.seek(toc_offset)
            blob = fh.read(toc_len)
            if len(blob) != toc_len:
                raise StorageError(
                    f"{path}: truncated snapshot TOC "
                    f"(file is {os.path.getsize(self.path)} bytes, "
                    f"TOC claims {toc_len} bytes at offset {toc_offset})"
                )
        try:
            toc = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"{path}: corrupt snapshot TOC ({exc})") from None
        self.kind = kind
        self.meta: Dict = toc.get("meta", {})
        self._toc = {entry["name"]: entry for entry in toc["sections"]}
        self._verified: set = set()

    def has(self, name: str) -> bool:
        return name in self._toc

    def array(self, name: str, writable: bool = False) -> np.ndarray:
        """Section ``name`` as a memmap view (or a heap array if empty).

        ``writable=True`` maps copy-on-write (``mode="c"``): writes land in
        private pages of the calling process; the file never changes.

        Sections written with ``checksum=True`` carry a ``crc32`` TOC
        entry, verified here lazily on the section's *first* access (a
        streamed read over the raw bytes — the page cost is paid anyway
        by the queries about to touch the map); a mismatch raises
        :class:`StorageError` naming the section and the file.
        """
        entry = self._toc.get(name)
        if entry is None:
            raise StorageError(f"{self.path}: no snapshot section {name!r}")
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        if "crc32" in entry and name not in self._verified:
            self._verify(name, entry, dtype, shape)
        if int(np.prod(shape)) == 0:
            return np.empty(shape, dtype=dtype)
        return np.memmap(
            self.path,
            dtype=dtype,
            mode="c" if writable else "r",
            offset=entry["offset"],
            shape=shape,
        )

    def _verify(
        self, name: str, entry: Dict, dtype: np.dtype, shape: Tuple[int, ...]
    ) -> None:
        """Stream the section's bytes and compare against the TOC crc32."""
        nbytes = int(np.prod(shape)) * dtype.itemsize
        crc = 0
        with open(self.path, "rb") as fh:
            fh.seek(entry["offset"])
            remaining = nbytes
            while remaining:
                chunk = fh.read(min(remaining, 1 << 20))
                if not chunk:
                    raise StorageError(
                        f"{self.path}: section {name!r} is truncated "
                        f"({nbytes - remaining} of {nbytes} bytes)"
                    )
                crc = zlib.crc32(chunk, crc)
                remaining -= len(chunk)
        if crc != int(entry["crc32"]):
            raise StorageError(
                f"{self.path}: checksum mismatch in section {name!r} "
                f"(stored crc32 {entry['crc32']}, computed {crc}) — "
                "the snapshot is corrupt; rebuild it with save_snapshot"
            )
        self._verified.add(name)

    def flat_labels(self, prefix: str) -> FlatLabels:
        """The seven ``{prefix}_*`` sections as a :class:`FlatLabels`."""
        return FlatLabels(
            *(self.array(f"{prefix}_{field}") for field in _FLAT_FIELDS)
        )


# ----------------------------------------------------------------------
# Writing snapshots from frozen engines
# ----------------------------------------------------------------------
def _flat_sections(prefix: str, flat: FlatLabels) -> Dict[str, np.ndarray]:
    return {f"{prefix}_{f}": arr for f, arr in zip(_FLAT_FIELDS, flat)}


def _slice_flat(flat: FlatLabels, lo: int, hi: int) -> FlatLabels:
    """Restrict a flat table to key positions ``[lo, hi)`` (rebased)."""
    e_lo, e_hi = int(flat.indptr[lo]), int(flat.indptr[hi])
    s_lo, s_hi = int(flat.seed_indptr[lo]), int(flat.seed_indptr[hi])
    return FlatLabels(
        flat.keys[lo:hi],
        flat.indptr[lo : hi + 1] - e_lo,
        flat.anc[e_lo:e_hi],
        flat.dist[e_lo:e_hi],
        flat.seed_indptr[lo : hi + 1] - s_lo,
        flat.seed_ids[s_lo:s_hi],
        flat.seed_dists[s_lo:s_hi],
    )


def _engine_parts(engine) -> Tuple[int, Dict[str, np.ndarray], Dict[str, FlatLabels]]:
    """``(kind, shared sections, label flats)`` of a frozen packed engine."""
    engine.freeze()
    csr = engine.csr
    if isinstance(engine, DirectedFastEngine):
        kind = KIND_DIRECTED
        shared = {
            "gk_ids": csr.ids_array,
            "gk_indptr": csr.indptr,
            "gk_indices": csr.indices,
            "gk_weights": csr.weights,
            "gk_rindptr": csr.rindptr,
            "gk_rindices": csr.rindices,
            "gk_rweights": csr.rweights,
        }
        flats = {"out": engine.out_table.to_flat(), "in": engine.in_table.to_flat()}
    elif isinstance(engine, FastEngine):
        kind = KIND_UNDIRECTED
        shared = {
            "gk_ids": csr.ids_array,
            "gk_indptr": csr.indptr,
            "gk_indices": csr.indices,
            "gk_weights": csr.weights,
        }
        flats = {"lab": engine.table.to_flat()}
    else:  # pragma: no cover - guarded by the facade
        raise StorageError(
            f"cannot snapshot engine of type {type(engine).__name__}"
        )
    if engine._apsp is not None:
        shared["apsp"] = np.asarray(engine._apsp, dtype=np.float64)
        shared["apsp_done"] = np.asarray(engine._apsp_done, dtype=bool)
    return kind, shared, flats


def write_snapshot(
    path: str,
    engine,
    extra_sections: Optional[Dict[str, np.ndarray]] = None,
    meta: Optional[Dict] = None,
    shards: int = 1,
    checksum: bool = False,
) -> int:
    """Dump a frozen packed engine as a snapshot; returns bytes written.

    ``shards=1`` writes a single file.  ``shards > 1`` writes a snapshot
    *directory*: ``manifest.json``, a ``shared.snap`` with the ``G_k``
    arrays, the optional all-pairs table and any ``extra_sections``
    (facade metadata), and ``shard-NNNN.snap`` files each holding one
    contiguous vertex-id range of every label table.  ``extra_sections``
    and ``meta`` ride in the shared file so facades can reconstruct
    coverage information without touching the label shards.

    ``checksum=True`` stamps every TOC section with a CRC32, verified
    lazily when a reader first maps the section — bit rot or a torn copy
    surfaces as a :class:`StorageError` naming the section instead of as
    silently wrong distances.
    """
    kind, shared, flats = _engine_parts(engine)
    meta = dict(meta or {})
    meta.setdefault("n_gk", int(engine.csr.num_vertices))
    if extra_sections:
        shared.update(extra_sections)

    if shards <= 1:
        if os.path.isdir(path):
            # Replacing a sharded snapshot with a single-file one is fine;
            # anything else is not ours to delete.
            if not os.path.exists(os.path.join(path, MANIFEST_NAME)):
                raise StorageError(
                    f"{path}: refusing to overwrite a non-snapshot directory"
                )
            shutil.rmtree(path)
        sections = dict(shared)
        for prefix, flat in flats.items():
            sections.update(_flat_sections(prefix, flat))
        return _write_section_file(path, kind, meta, sections, checksum=checksum)

    # Shard boundaries: the union of every table's keys, split into
    # near-equal contiguous vertex-id ranges.
    all_keys = np.unique(np.concatenate([f.keys for f in flats.values()]))
    if all_keys.size == 0:
        bounds = [0]
    else:
        count = max(1, min(int(shards), len(all_keys)))
        bounds = sorted(
            {int(all_keys[(len(all_keys) * i) // count]) for i in range(count)}
        )

    if os.path.isdir(path):
        # Refuse to clobber a directory we did not write: only replace it
        # when it is empty or is itself a sharded snapshot.
        if os.listdir(path) and not os.path.exists(
            os.path.join(path, MANIFEST_NAME)
        ):
            raise StorageError(
                f"{path}: refusing to overwrite a non-snapshot directory"
            )
        shutil.rmtree(path)
    elif os.path.exists(path):
        # Replacing a single-file snapshot with a sharded one is fine;
        # refuse to delete any other existing file.
        if not is_snapshot_path(path):
            raise StorageError(
                f"{path}: refusing to overwrite a non-snapshot file"
            )
        os.unlink(path)
    os.makedirs(path)
    total = 0
    shard_entries = []
    for i, start in enumerate(bounds):
        stop = bounds[i + 1] if i + 1 < len(bounds) else None
        sections: Dict[str, np.ndarray] = {}
        for prefix, flat in flats.items():
            lo = int(np.searchsorted(flat.keys, start))
            hi = (
                int(np.searchsorted(flat.keys, stop))
                if stop is not None
                else len(flat.keys)
            )
            sections.update(_flat_sections(prefix, _slice_flat(flat, lo, hi)))
        name = f"shard-{i:04d}.snap"
        total += _write_section_file(
            os.path.join(path, name),
            kind,
            {"shard": i, "start": start},
            sections,
            checksum=checksum,
        )
        shard_entries.append({"file": name, "start": start})
    total += _write_section_file(
        os.path.join(path, "shared.snap"), kind, meta, shared, checksum=checksum
    )
    manifest = {
        "magic": SNAPSHOT_MAGIC.decode("ascii"),
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "shared": "shared.snap",
        "shards": shard_entries,
    }
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    total += os.path.getsize(manifest_path)
    return total


# ----------------------------------------------------------------------
# Reading snapshots
# ----------------------------------------------------------------------
def is_snapshot_path(path) -> bool:
    """True when ``path`` is a snapshot file or sharded snapshot directory."""
    path = os.fspath(path)
    if os.path.isdir(path):
        return os.path.exists(os.path.join(path, MANIFEST_NAME))
    try:
        with open(path, "rb") as fh:
            return fh.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False


class _ShardHandle:
    """One label shard: opens its file (and flat views) on first touch."""

    __slots__ = ("start", "path", "prefix", "_table")

    def __init__(self, start: int, path: str, prefix: str) -> None:
        self.start = start
        self.path = path
        self.prefix = prefix
        self._table: Optional[LabelTable] = None

    @property
    def opened(self) -> bool:
        return self._table is not None

    @property
    def table(self) -> LabelTable:
        if self._table is None:
            self._table = LabelTable.from_flat(
                SnapshotFile(self.path).flat_labels(self.prefix)
            )
        return self._table


class ShardedLabelTable:
    """A :class:`LabelTable` split into contiguous vertex-id-range shards.

    Lookups bisect the shard start keys and delegate to the owning shard's
    table; shards open (mmap) lazily, so a worker only maps the files its
    queries actually route to.  Presents the same accessor surface as
    :class:`LabelTable`, making it a drop-in for the packed engines.
    """

    __slots__ = ("shards", "_starts")

    def __init__(self, shards: Sequence[_ShardHandle]) -> None:
        self.shards = list(shards)
        self._starts = [s.start for s in self.shards]

    @property
    def starts(self) -> List[int]:
        """Sorted first vertex id of each shard (the scheduler's routing
        table: vertex ``v`` belongs to the shard whose start is the
        rightmost one ``<= v``)."""
        return list(self._starts)

    def _route(self, v: int) -> LabelTable:
        # A bisect over the (tiny) starts list per access: deliberately
        # not cached per vertex — the per-vertex label caches below this
        # already grow with the touched set, and doubling that footprint
        # to skip a bisect would fight the low-RSS serving goal.
        i = bisect_right(self._starts, v) - 1
        return self.shards[max(i, 0)].table

    def label(self, v: int):
        return self._route(v).label(v)

    def seeds(self, v: int):
        return self._route(v).seeds(v)

    def seeds_np(self, v: int):
        return self._route(v).seeds_np(v)

    def repack(self, dirty, lists, gk_ids) -> None:
        groups: Dict[int, set] = {}
        for v in dirty:
            i = max(bisect_right(self._starts, v) - 1, 0)
            groups.setdefault(i, set()).add(v)
        for i, vs in groups.items():
            self.shards[i].table.repack(vs, lists, gk_ids)

    def num_labels(self) -> int:
        return sum(s.table.num_labels() for s in self.shards)

    def nbytes(self) -> int:
        return sum(s.table.nbytes() for s in self.shards)

    def vertex_ids(self) -> List[int]:
        out: List[int] = []
        for s in self.shards:
            out.extend(s.table.vertex_ids())
        return sorted(out)

    def to_flat(self) -> FlatLabels:
        merged = LabelTable()
        for s in self.shards:
            table = s.table
            for v in table.vertex_ids():
                merged.labels[v] = table.label(v)
                ids, dists = table.seeds_np(v)
                merged.seed_ids_np[v] = ids
                merged.seed_dists_np[v] = dists
        return merged.to_flat()

    @property
    def labels(self) -> Dict:
        """Merged view of the shards' materialized caches (debug aid)."""
        out: Dict = {}
        for s in self.shards:
            if s.opened:
                out.update(s.table.labels)
        return out


class Snapshot:
    """A parsed snapshot (single file or sharded directory)."""

    __slots__ = ("path", "kind", "meta", "shared", "_shard_entries")

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        if os.path.isdir(self.path):
            manifest_path = os.path.join(self.path, MANIFEST_NAME)
            try:
                with open(manifest_path, "r", encoding="utf-8") as fh:
                    manifest = json.load(fh)
            except OSError as exc:
                raise StorageError(
                    f"{path}: not a sharded snapshot ({exc})"
                ) from None
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise StorageError(
                    f"{manifest_path}: corrupt shard manifest ({exc})"
                ) from None
            if "shared" not in manifest or "shards" not in manifest:
                raise StorageError(
                    f"{manifest_path}: shard manifest is missing its "
                    "'shared'/'shards' entries"
                )
            self.shared = SnapshotFile(os.path.join(self.path, manifest["shared"]))
            self._shard_entries = [
                (int(entry["start"]), os.path.join(self.path, entry["file"]))
                for entry in manifest["shards"]
            ]
        else:
            self.shared = SnapshotFile(self.path)
            self._shard_entries = None
        self.kind = self.shared.kind
        self.meta = self.shared.meta

    @property
    def sharded(self) -> bool:
        return self._shard_entries is not None

    @property
    def shard_starts(self) -> List[int]:
        """Sorted first vertex id of each label shard ([] when unsharded).

        The shard mapping half of the manifest: vertex ``v`` lives in the
        shard whose start is the rightmost one ``<= v`` (ids below every
        start route to shard 0).  :class:`repro.serving.scheduler.ShardScheduler`
        consumes this to bucket query pairs by owning shard pair.
        """
        if self._shard_entries is None:
            return []
        return [start for start, _ in self._shard_entries]

    def ownership(self) -> Dict[int, Dict[str, object]]:
        """Shard index → ``{"start", "file"}`` ownership map of the manifest.

        What a serving deployment partitions across workers: each worker
        claims a subset of these shard indices (``repro serve --owned``),
        and the scheduler routes each query bucket to a worker owning the
        bucket's source shard.  Empty for single-file snapshots, which
        have exactly one implicit shard.
        """
        if self._shard_entries is None:
            return {}
        return {
            i: {"start": start, "file": os.path.basename(path)}
            for i, (start, path) in enumerate(self._shard_entries)
        }

    def label_table(self, prefix: str):
        """The ``prefix`` label table (``"lab"`` / ``"out"`` / ``"in"``)."""
        if self._shard_entries is None:
            return LabelTable.from_flat(self.shared.flat_labels(prefix))
        return ShardedLabelTable(
            [_ShardHandle(start, p, prefix) for start, p in self._shard_entries]
        )

    def csr(self):
        """The frozen ``G_k`` CSR view over the mapped arrays."""
        shared = self.shared
        if self.kind == KIND_DIRECTED:
            return CSRDiGraph.from_arrays(
                shared.array("gk_ids"),
                shared.array("gk_indptr"),
                shared.array("gk_indices"),
                shared.array("gk_weights"),
                shared.array("gk_rindptr"),
                shared.array("gk_rindices"),
                shared.array("gk_rweights"),
            )
        return CSRGraph.from_arrays(
            shared.array("gk_ids"),
            shared.array("gk_indptr"),
            shared.array("gk_indices"),
            shared.array("gk_weights"),
        )

    def apsp(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Copy-on-write views of the all-pairs table, if snapshotted."""
        if not self.shared.has("apsp"):
            return None, None
        return (
            self.shared.array("apsp", writable=True),
            self.shared.array("apsp_done", writable=True),
        )

    def gk_graph(self):
        """Rebuild ``G_k`` as a mutable graph object (it is tiny)."""
        csr = self.csr()
        ids = csr.id_of
        if self.kind == KIND_DIRECTED:
            dg = DiGraph()
            for v in ids:
                dg.add_vertex(v)
            indptr = csr.indptr.tolist()
            indices = csr.indices.tolist()
            weights = csr.weights.tolist()
            for i, v in enumerate(ids):
                for p in range(indptr[i], indptr[i + 1]):
                    dg.add_edge(v, ids[indices[p]], weights[p])
            return dg
        g = Graph()
        for v in ids:
            g.add_vertex(v)
        indptr = csr.indptr.tolist()
        indices = csr.indices.tolist()
        weights = csr.weights.tolist()
        for i, v in enumerate(ids):
            for p in range(indptr[i], indptr[i + 1]):
                j = indices[p]
                if i <= j:
                    g.add_edge(v, ids[j], weights[p])
        return g

    def coverage(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(vertex ids, levels)`` of every covered vertex, if recorded."""
        if not self.shared.has("cov_keys"):
            return None
        return self.shared.array("cov_keys"), self.shared.array("cov_levels")


def open_snapshot(path) -> Snapshot:
    """Open a snapshot file or sharded snapshot directory."""
    return Snapshot(path)


class SnapshotLabels(Mapping):
    """Read-only entry-list view of a snapshot label table.

    Lets the index facades treat mmap-backed labels as the familiar
    ``{vertex: [(ancestor, distance), ...]}`` mapping: entries materialize
    per vertex on first access (and are cached), so loading stays O(1)
    while the dict-engine reference path, ``index.label(v)`` and
    ``index.stats`` keep working against snapshots.
    """

    __slots__ = ("_table", "_keys", "_cache")

    def __init__(self, table) -> None:
        self._table = table
        self._keys: Optional[List[int]] = None
        self._cache: Dict[int, List[Tuple[int, int]]] = {}

    def _ids(self) -> List[int]:
        if self._keys is None:
            self._keys = self._table.vertex_ids()
        return self._keys

    def __getitem__(self, v: int) -> List[Tuple[int, int]]:
        got = self._cache.get(v)
        if got is not None:
            return got
        label = self._table.label(v)
        if label is None:
            raise KeyError(v)
        entries = list(zip(label[0].tolist(), label[1].tolist()))
        self._cache[v] = entries
        return entries

    def __iter__(self):
        return iter(self._ids())

    def __len__(self) -> int:
        return len(self._ids())


# ----------------------------------------------------------------------
# The serving engines
# ----------------------------------------------------------------------
class _SnapshotSpillMixin:
    """Shared snapshot lifecycle of the mmap/sharded serving engines.

    Owns the freeze orchestration: adopt an existing snapshot, or (when
    constructed from live entry lists) heap-freeze through the parent
    engine, spill a temporary snapshot and adopt that — plus the
    spill-cleanup on full invalidation and GC.  Subclasses declare the
    ``_snapshot_path``/``_owns_snapshot``/``_spill_shards`` slots (a
    slotted mixin cannot carry them next to another slotted base), call
    :meth:`_init_spill` from ``__init__`` and supply the
    orientation-specific :meth:`_adopt`.
    """

    __slots__ = ()

    def _init_spill(self, snapshot: Optional[str], shards: int = 1) -> None:
        self._snapshot_path = None if snapshot is None else os.fspath(snapshot)
        self._owns_snapshot = False
        self._spill_shards = shards

    def freeze(self):
        if self.frozen:
            return self
        if self._snapshot_path is None:
            self._spill()
        self._adopt(open_snapshot(self._snapshot_path))
        self.frozen = True
        return self

    def _spill(self) -> None:
        """Heap-freeze the live entry lists and dump a temporary snapshot.

        The temp path is tracked in the module spill registry the moment
        it exists, and unlinked on *any* failure mid-dump — a
        ``write_snapshot`` that raises (disk full, a killed freeze) must
        not leave a half-written ``repro-snap-*`` orphan behind, and an
        engine that is never explicitly invalidated is still reaped by
        the atexit hook.
        """
        super().freeze()
        if self._spill_shards > 1:
            path = tempfile.mkdtemp(prefix="repro-snap-")
        else:
            fd, path = tempfile.mkstemp(prefix="repro-snap-", suffix=".snap")
            os.close(fd)
        _LIVE_SPILLS.add(path)
        try:
            write_snapshot(path, self, shards=self._spill_shards)
        except BaseException:
            _LIVE_SPILLS.discard(path)
            _remove_spill_path(path)
            raise
        self._snapshot_path = path
        self._owns_snapshot = True
        self.frozen = False  # _adopt replaces the heap structures

    def _adopt(self, snap: "Snapshot") -> None:
        raise NotImplementedError

    def _adopt_apsp(self, snap: "Snapshot") -> None:
        """Adopt the snapshotted all-pairs table (copy-on-write), or
        allocate a fresh heap table under the usual budget."""
        apsp, done = snap.apsp()
        if apsp is not None:
            self._apsp, self._apsp_done = apsp, done
            return
        n = self.csr.num_vertices
        if 0 < n <= self.apsp_max_gk:
            self._apsp = np.full((n, n), np.inf)
            self._apsp_done = np.zeros(n, dtype=bool)
        else:
            self._apsp = None
            self._apsp_done = None

    def _drop_frozen(self) -> None:
        super()._drop_frozen()
        self._discard_spill()

    def _discard_spill(self) -> None:
        if self._owns_snapshot and self._snapshot_path is not None:
            _LIVE_SPILLS.discard(self._snapshot_path)
            _remove_spill_path(self._snapshot_path)
            self._snapshot_path = None
            self._owns_snapshot = False

    def close(self) -> None:
        """Release the engine's frozen structures and any temp spill.

        Explicit, deterministic teardown for serving processes: drops
        the mapped views and deletes a spilled temporary snapshot now
        instead of waiting for GC or interpreter exit.  The engine stays
        usable — the next query re-freezes (and re-spills) from the
        current entry lists or the adopted snapshot path.
        """
        self._drop_frozen()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self._discard_spill()
        except Exception:
            pass


class MmapEngine(_SnapshotSpillMixin, FastEngine):
    """Undirected ``"mmap"`` engine: frozen state adopted from a snapshot.

    Two lifecycles share one query code path:

    * **snapshot-backed** (``from_snapshot`` / ``load_index(path,
      engine="mmap")``): freezing memmaps the snapshot's sections — the
      label views materialize lazily per vertex, the all-pairs table maps
      copy-on-write, and nothing is parsed;
    * **build-backed** (``ISLabelIndex.build(..., engine="mmap")``): the
      first freeze packs the live entry lists on the heap, spills a
      temporary snapshot, and re-adopts it — the full save→serve
      roundtrip, which is what the property suites compare against the
      dict oracle.

    Between invalidations the engine is read-only like its parent; §8.3
    incremental repairs splice heap overrides in front of the mapped
    views (see :meth:`LabelTable.repack`), and a full invalidation of a
    build-backed engine discards the spilled file so the next freeze
    re-packs from the current labels.
    """

    __slots__ = ("_snapshot_path", "_owns_snapshot", "_spill_shards")

    name = "mmap"

    def __init__(
        self,
        gk,
        entry_lists,
        arrays=None,
        apsp_budget_bytes: Optional[int] = None,
        snapshot: Optional[str] = None,
    ) -> None:
        super().__init__(gk, entry_lists, arrays, apsp_budget_bytes)
        self._init_spill(snapshot)

    @classmethod
    def from_snapshot(cls, gk, path, apsp_budget_bytes=None) -> "MmapEngine":
        """Serve an existing snapshot (no entry lists; read-only)."""
        return cls(gk, {}, None, apsp_budget_bytes, snapshot=path)

    def _adopt(self, snap: Snapshot) -> None:
        if snap.kind != KIND_UNDIRECTED:
            raise StorageError(
                f"{snap.path}: directed snapshot; use the directed engine"
            )
        self.csr = snap.csr()
        self.indptr = self.csr.indptr.tolist()
        self.indices = self.csr.indices.tolist()
        self.weights = self.csr.weights.tolist()
        self.table = snap.label_table("lab")
        self._adopt_apsp(snap)

    def _num_labels(self) -> int:
        if self.entry_lists:
            return len(self.entry_lists)
        return self.table.num_labels() if self.table is not None else 0


class ShardedEngine(MmapEngine):
    """Undirected ``"sharded"`` engine: vertex-id-range label shards.

    Adopts a sharded snapshot directory; each shard file memmaps lazily on
    the first query routed into its vertex-id range, so a worker process
    only maps (and pages in) the shards it serves.  The replicated
    ``G_k``/table sections come from the shared file.  Built from live
    entry lists it spills a temporary sharded snapshot first.
    """

    __slots__ = ()

    name = "sharded"

    def __init__(
        self,
        gk,
        entry_lists,
        arrays=None,
        apsp_budget_bytes: Optional[int] = None,
        snapshot: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
    ) -> None:
        super().__init__(gk, entry_lists, arrays, apsp_budget_bytes, snapshot)
        self._spill_shards = max(2, int(shards))


class DirectedMmapEngine(_SnapshotSpillMixin, DirectedFastEngine):
    """Directed ``"mmap"`` engine (out/in label tables from one snapshot)."""

    __slots__ = ("_snapshot_path", "_owns_snapshot", "_spill_shards")

    name = "mmap"

    def __init__(
        self,
        gk,
        out_lists,
        in_lists,
        apsp_budget_bytes: Optional[int] = None,
        snapshot: Optional[str] = None,
    ) -> None:
        super().__init__(gk, out_lists, in_lists, apsp_budget_bytes)
        self._init_spill(snapshot)

    @classmethod
    def from_snapshot(cls, gk, path, apsp_budget_bytes=None):
        """Serve an existing directed snapshot (read-only)."""
        return cls(gk, {}, {}, apsp_budget_bytes, snapshot=path)

    def _adopt(self, snap: Snapshot) -> None:
        if snap.kind != KIND_DIRECTED:
            raise StorageError(
                f"{snap.path}: undirected snapshot; use the undirected engine"
            )
        self.csr = snap.csr()
        self.indptr = self.csr.indptr.tolist()
        self.indices = self.csr.indices.tolist()
        self.weights = self.csr.weights.tolist()
        self.rindptr = self.csr.rindptr.tolist()
        self.rindices = self.csr.rindices.tolist()
        self.rweights = self.csr.rweights.tolist()
        self.out_table = snap.label_table("out")
        self.in_table = snap.label_table("in")
        self._adopt_apsp(snap)

    def _num_labels(self) -> int:
        if self.out_lists or self.in_lists:
            return len(self.out_lists) + len(self.in_lists)
        if self.out_table is None:
            return 0
        return self.out_table.num_labels() + self.in_table.num_labels()


class DirectedShardedEngine(DirectedMmapEngine):
    """Directed ``"sharded"`` engine (out/in tables sharded by id range)."""

    __slots__ = ()

    name = "sharded"

    def __init__(
        self,
        gk,
        out_lists,
        in_lists,
        apsp_budget_bytes: Optional[int] = None,
        snapshot: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
    ) -> None:
        super().__init__(gk, out_lists, in_lists, apsp_budget_bytes, snapshot)
        self._spill_shards = max(2, int(shards))


register_engine(
    UNDIRECTED, MmapEngine.name, MmapEngine, {CAP_LOCAL, CAP_SNAPSHOT}
)
register_engine(
    UNDIRECTED,
    ShardedEngine.name,
    ShardedEngine,
    {CAP_LOCAL, CAP_SNAPSHOT, CAP_SHARDED},
)
register_engine(
    DIRECTED, DirectedMmapEngine.name, DirectedMmapEngine, {CAP_LOCAL, CAP_SNAPSHOT}
)
register_engine(
    DIRECTED,
    DirectedShardedEngine.name,
    DirectedShardedEngine,
    {CAP_LOCAL, CAP_SNAPSHOT, CAP_SHARDED},
)
