"""Independent-set selection — Algorithm 2 (§6.1.1).

The hierarchy wants each ``L_i`` as large as possible (fewer levels, smaller
labels), but maximum independent set is NP-hard, so the paper adopts the
classic greedy heuristic of Halldórsson & Radhakrishnan [16]: repeatedly
take the vertex of minimum degree and exclude its neighbours.

Both the in-memory version and the I/O-efficient external version
(Algorithm 2 verbatim, including the mid-scan purge of the excluded-set
buffer ``L'``) are provided, plus a random-order variant used by the
IS-strategy ablation.  All versions return the selected set *and*
``ADJ(L_i)`` — the adjacency lists of selected vertices — because
Algorithm 3 consumes exactly that.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.extmem.blockdev import BlockDevice
from repro.extmem.extgraph import ExternalGraph, pack_row, unpack_row
from repro.extmem.extsort import external_sort
from repro.graph.graph import Graph

__all__ = [
    "greedy_independent_set",
    "bucket_order",
    "min_degree_order",
    "random_independent_set",
    "external_independent_set",
    "is_independent_set",
]

Adjacency = List[Tuple[int, int]]


def greedy_independent_set(graph: Graph) -> Tuple[List[int], Dict[int, Adjacency]]:
    """Greedy min-degree independent set of ``graph`` (in-memory Algorithm 2).

    Returns
    -------
    (selected, adj_of):
        ``selected`` lists the independent set in selection order;
        ``adj_of[v]`` is ``adj_G(v)`` (sorted) for each selected ``v``.

    Vertices are visited in ascending ``(degree, id)`` order — degrees as of
    the input graph, matching the one-shot sort of Algorithm 2 rather than a
    dynamically updated priority structure.  Ties broken by id keep the
    algorithm deterministic.  The order comes from a degree-bucket counting
    pass over a degree array (:func:`min_degree_order`) rather than a full
    ``sorted()`` with a key function: the hierarchy calls this once per
    level, and the comparison sort was the construction hot spot.
    """
    return _select_in_order(graph, min_degree_order(graph))


def bucket_order(vertices, degree_of) -> List[int]:
    """Vertex ids in ascending ``(degree, id)`` order via degree buckets.

    Equivalent to ``sorted(vertices, key=lambda v: (degree_of(v), v))`` but
    O(n + max_degree) after the plain id sort: vertices are dropped into
    one bucket per degree in ascending-id order and the buckets are
    concatenated.  Shared by the undirected Algorithm-2 greedy and the
    directed (§8.2) peeling, which passes ``undirected_degree``.
    """
    buckets: List[List[int]] = []
    for v in sorted(vertices):
        d = degree_of(v)
        while len(buckets) <= d:
            buckets.append([])
        buckets[d].append(v)
    return [v for bucket in buckets for v in bucket]


def min_degree_order(graph: Graph) -> List[int]:
    """Ascending ``(degree, id)`` order of ``graph`` (see :func:`bucket_order`)."""
    return bucket_order(graph.vertices(), graph.degree)


def random_independent_set(
    graph: Graph, seed: Optional[int] = None
) -> Tuple[List[int], Dict[int, Adjacency]]:
    """Maximal independent set built in *random* order (ablation baseline).

    Same exclusion rule as the greedy algorithm but with a shuffled visit
    order, isolating the value of the min-degree heuristic.
    """
    order = sorted(graph.vertices())
    random.Random(seed).shuffle(order)
    return _select_in_order(graph, order)


def _select_in_order(
    graph: Graph, order: List[int]
) -> Tuple[List[int], Dict[int, Adjacency]]:
    selected: List[int] = []
    adj_of: Dict[int, Adjacency] = {}
    excluded: Set[int] = set()
    for u in order:
        if u in excluded:
            continue
        row = graph.neighbors(u)
        selected.append(u)
        adj_of[u] = sorted(row.items())
        excluded.update(row)
    return selected, adj_of


def external_independent_set(
    device: BlockDevice,
    graph: ExternalGraph,
    excluded_buffer_capacity: Optional[int] = None,
) -> Tuple[ExternalGraph, ExternalGraph]:
    """I/O-efficient Algorithm 2 on a disk-resident graph.

    Parameters
    ----------
    device:
        The block device holding ``graph`` (and receiving temporaries).
    graph:
        Disk-resident ``G_i``.
    excluded_buffer_capacity:
        Maximum number of vertex ids the in-memory ``L'`` buffer may hold
        before the algorithm purges it by rewriting ``G'_i`` (lines 10–11 of
        Algorithm 2).  Defaults to as many 8-byte ids as fit in the cost
        model's memory budget.

    Returns
    -------
    (adj_li, remainder):
        ``adj_li`` holds the rows of selected vertices — this *is*
        ``L_i`` together with ``ADJ(L_i)``; ``remainder`` holds the rows of
        ``G'_i`` vertices that were excluded (used by tests; Algorithm 3
        re-reads ``G_i`` itself).
    """
    if excluded_buffer_capacity is None:
        excluded_buffer_capacity = max(1, device.cost_model.memory // 8)

    # Line 3: sort adjacency lists in ascending order of degree.
    work = external_sort(device, graph.data, key=_degree_key)

    selected_file = device.create()
    remainder_file = device.create()
    excluded: Set[int] = set()
    selected_count = 0
    selected_slots = 0

    # Lines 4-11: scan in degree order, selecting and excluding.
    current = work
    while True:
        overflow = False
        resume_after: Optional[bytes] = None
        for record in current.records():
            vertex, adjacency = unpack_row(record)
            if vertex in excluded:
                remainder_file.append(record)
                continue
            selected_file.append(record)
            selected_count += 1
            selected_slots += len(adjacency)
            for u, _ in adjacency:
                excluded.add(u)
            if len(excluded) > excluded_buffer_capacity:
                # Buffer L' is full: purge it by scanning G' and deleting
                # every excluded vertex (they can never be selected).
                overflow = True
                resume_after = record
                break
        if not overflow:
            break
        current = _purge_excluded(
            device, current, excluded, resume_after, remainder_file
        )
        excluded.clear()

    selected_file.close()
    remainder_file.close()
    adj_li = ExternalGraph(
        device, selected_file, selected_count, 0
    )  # selected rows are not a closed graph; num_edges unused
    adj_li.num_edges = selected_slots  # slot count, for I/O reporting
    remainder = ExternalGraph(device, remainder_file, 0, 0)
    return adj_li, remainder


def _degree_key(record: bytes) -> Tuple[int, int]:
    vertex, adjacency = unpack_row(record)
    return (len(adjacency), vertex)


def _purge_excluded(
    device: BlockDevice,
    current,
    excluded: Set[int],
    resume_after: Optional[bytes],
    remainder_file,
):
    """Rewrite the unread remainder of ``current`` without excluded rows.

    Models lines 10–11 of Algorithm 2: "scan G'_i to delete all v in L' and
    adj(v), and clear L'".  Rows at or before ``resume_after`` were already
    consumed by the caller's scan and are skipped; purged rows go to the
    remainder file so callers still see every non-selected row exactly once.
    """
    rewritten = device.create()
    passed_resume = resume_after is None
    for record in current.records():
        if not passed_resume:
            if record == resume_after:
                passed_resume = True
            continue
        vertex, _ = unpack_row(record)
        if vertex not in excluded:
            rewritten.append(record)
        else:
            remainder_file.append(record)
    rewritten.close()
    device.delete(current.name)
    return rewritten


def is_independent_set(graph: Graph, vertices) -> bool:
    """True iff ``vertices`` is an independent set of ``graph`` (§4.1)."""
    vs = set(vertices)
    for v in vs:
        if any(u in vs for u in graph.neighbors(v)):
            return False
    return True
