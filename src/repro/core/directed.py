"""Directed IS-LABEL — §8.2.

Differences from the undirected index, exactly as the paper lists them:

* the independent set is computed "by simply ignoring the direction of the
  edges";
* an augmenting arc ``(u, w)`` is created at ``G_i`` only if some removed
  ``v`` has arcs ``(u, v)`` and ``(v, w)``;
* every vertex carries two labels: the *out-label* (out-ancestors, reached
  by increasing-level arcs leaving ``v``) and the *in-label* (in-ancestors);
* a query intersects ``LABEL_out(s)`` with ``LABEL_in(t)``, and the Type-2
  bidirectional search runs forwards over successors and backwards over
  predecessors of ``G_k``.

Setting every arc weight to 1 turns distance queries into reachability
tests (`dist < inf`), the §9 observation.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.engines import DIRECTED, resolve_engine
from repro.core.fastdirected import DirectedFastEngine
from repro.core.independent_set import bucket_order
from repro.core.labels import (
    eq1_distance,
    eq1_distance_argmin,
    merge_neighbor_labels,
    sort_label,
)
from repro.core.query import label_bidijkstra
from repro.errors import IndexBuildError, QueryError
from repro.graph.digraph import DiGraph

__all__ = ["DirectedISLabelIndex", "DirectedHierarchy"]

Adjacency = List[Tuple[int, int]]


#: ``hints[(u, w)] = v`` records that arc ``(u, w)``'s current weight
#: decomposes as the 2-path ``u -> v -> w`` (§8.1 applied to arcs).
ArcHints = Dict[Tuple[int, int], int]


@dataclass
class DirectedHierarchy:
    """k-level hierarchy of a digraph.

    ``levels[i][v] = (in_adj, out_adj)`` — predecessor and successor lists
    of ``v`` in ``G_{i+1}`` at removal time.
    """

    levels: List[Dict[int, Tuple[Adjacency, Adjacency]]]
    gk: DiGraph
    level_of: Dict[int, int]
    sizes: List[int]
    sigma: Optional[float]
    hints: Optional[ArcHints] = None
    build_seconds: float = 0.0

    @property
    def k(self) -> int:
        return len(self.levels) + 1

    def in_gk(self, v: int) -> bool:
        return self.gk.has_vertex(v)


def _build_directed_hierarchy(
    graph: DiGraph,
    sigma: Optional[float],
    k: Optional[int],
    full: bool,
    with_hints: bool = False,
) -> DirectedHierarchy:
    if k is not None and k < 2:
        raise IndexBuildError("k must be at least 2")
    started = time.perf_counter()
    work = graph.copy()
    levels: List[Dict[int, Tuple[Adjacency, Adjacency]]] = []
    level_of: Dict[int, int] = {}
    sizes = [work.size]
    hints: Optional[ArcHints] = {} if with_hints else None

    while True:
        if work.num_vertices == 0:
            break
        if k is not None and len(levels) >= k - 1:
            break
        if not full and k is None and work.num_edges == 0:
            break

        # Greedy min-degree IS on the underlying undirected graph; the
        # bucket pass ported from the undirected Algorithm-2 greedy avoids
        # re-sorting the whole vertex set with a comparison sort per round.
        order = bucket_order(work.vertices(), work.undirected_degree)
        selected: List[int] = []
        peeled: Dict[int, Tuple[Adjacency, Adjacency]] = {}
        excluded: set = set()
        for u in order:
            if u in excluded:
                continue
            neighbors = work.undirected_neighbors(u)
            selected.append(u)
            peeled[u] = (
                sorted(work.predecessors(u).items()),
                sorted(work.successors(u).items()),
            )
            excluded.update(neighbors)
        if not selected:
            raise IndexBuildError("independent set selection returned nothing")

        level_number = len(levels) + 1
        for v in selected:
            level_of[v] = level_number
        levels.append(peeled)

        # Peel and augment: in-neighbour x out-neighbour join per removed v.
        for v in selected:
            work.remove_vertex(v)
        for v, (in_adj, out_adj) in peeled.items():
            for u, wu in in_adj:
                for w, ww in out_adj:
                    if u != w and work.merge_edge(u, w, wu + ww):
                        if hints is not None:
                            hints[(u, w)] = v
        sizes.append(work.size)

        if full or k is not None:
            continue
        if sizes[-1] > sigma * sizes[-2]:
            break

    top = len(levels) + 1
    for v in work.vertices():
        level_of[v] = top
    return DirectedHierarchy(
        levels=levels,
        gk=work,
        level_of=level_of,
        sizes=sizes,
        sigma=None if (full or k is not None) else sigma,
        hints=hints,
        build_seconds=time.perf_counter() - started,
    )


class DirectedISLabelIndex:
    """IS-LABEL over a directed graph (out-labels + in-labels).

    ``engine`` mirrors the undirected index: ``"fast"`` (default) attaches
    a :class:`repro.core.fastdirected.DirectedFastEngine` — packed out/in
    label arrays, per-direction CSR views of ``G_k`` and a batch
    :meth:`distances` path — while ``"dict"`` keeps only the reference
    structures.  Both are answer-identical; path reconstruction always
    runs on the reference structures.
    """

    def __init__(
        self,
        hierarchy: DirectedHierarchy,
        out_labels: Dict[int, List[Tuple[int, int]]],
        in_labels: Dict[int, List[Tuple[int, int]]],
        labeling_seconds: float,
        out_preds: Optional[Dict[int, Dict[int, Optional[int]]]] = None,
        in_preds: Optional[Dict[int, Dict[int, Optional[int]]]] = None,
        fast: Optional[DirectedFastEngine] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.gk = hierarchy.gk
        self._out_labels = out_labels
        self._in_labels = in_labels
        self._out_preds = out_preds
        self._in_preds = in_preds
        self._labeling_seconds = labeling_seconds
        self._fast = fast
        # Lazily built directed hub sketch (the approximate tier);
        # dropped whenever labels change so it can never serve stale bounds.
        self._sketch = None

    @property
    def engine(self) -> str:
        """Registry name of the attached backend (``"dict"`` if none)."""
        return self._fast.name if self._fast is not None else "dict"

    @property
    def search_mode(self) -> str:
        """How the Type-2 search stage runs: ``"apsp"`` (one-way distance
        table), ``"csr"`` (flat-array bi-Dijkstra), ``"dict"`` — or the
        backend's own name for protocol-only engines (``"remote"``)."""
        if self._fast is None:
            return "dict"
        if not hasattr(self._fast, "has_apsp"):
            return self._fast.name
        return "apsp" if self._fast.has_apsp else "csr"

    def attach_fast_engine(self, engine: str = "fast") -> "DirectedISLabelIndex":
        """Attach the registered directed ``engine`` over the current
        labels/``G_k`` (used by
        :func:`repro.core.serialization.load_directed_index` and tests).
        Resolves through the engine registry; the engine snapshots the
        labels — do not mutate them afterwards."""
        factory = resolve_engine(DIRECTED, engine)
        self._fast = (
            factory(self.gk, self._out_labels, self._in_labels)
            if factory is not None
            else None
        )
        return self

    def invalidate_labels(self, dirty=None) -> None:
        """Report in-place label/``G_k`` mutations to the attached engine.

        Mirrors :meth:`repro.core.index.ISLabelIndex.invalidate_labels`:
        the §8.3 directed maintenance
        (:class:`repro.core.updates.DynamicDirectedISLabelIndex`) patches
        the out/in label tables and ``G_k`` in place, then passes the
        touched vertices here so the fast engine can re-pack just those
        labels (or fall back to a full re-freeze).  No-op on the dict
        reference path.
        """
        self._sketch = None  # sketches are built from labels; never stale
        if self._fast is not None:
            self._fast.invalidate(dirty)

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        sigma: Optional[float] = 0.95,
        k: Optional[int] = None,
        full: bool = False,
        with_paths: bool = False,
        engine: str = "fast",
    ) -> "DirectedISLabelIndex":
        """Build the directed index (same knobs as the undirected one).

        ``with_paths`` records arc hints and label predecessors so
        :meth:`shortest_path` can reconstruct directed paths (§8.1 applied
        to the directed index).  ``engine`` selects the query backend via
        the shared registry (see class docs); labeling itself is
        engine-independent and the fast engine freezes lazily, so build
        time does not depend on the choice.
        """
        factory = resolve_engine(DIRECTED, engine)
        hierarchy = _build_directed_hierarchy(
            graph, sigma, k, full, with_hints=with_paths
        )
        started = time.perf_counter()

        out_maps: Dict[int, Dict[int, int]] = {}
        in_maps: Dict[int, Dict[int, int]] = {}
        out_preds: Optional[Dict[int, Dict[int, Optional[int]]]] = (
            {} if with_paths else None
        )
        in_preds: Optional[Dict[int, Dict[int, Optional[int]]]] = (
            {} if with_paths else None
        )
        for v in hierarchy.gk.vertices():
            out_maps[v] = {v: 0}
            in_maps[v] = {v: 0}
            if with_paths:
                out_preds[v] = {v: None}
                in_preds[v] = {v: None}
        # Top-down labeling is Algorithm 4's min-merge, once per direction:
        # out-labels over out-arcs (v -> u, ℓ(u) > i), in-labels over
        # in-arcs (u -> v) — the same shared merge step as the undirected
        # labeler.
        for i in range(hierarchy.k - 1, 0, -1):
            for v, (in_adj, out_adj) in hierarchy.levels[i - 1].items():
                out_v, out_p = merge_neighbor_labels(
                    v, out_adj, out_maps, with_paths
                )
                in_v, in_p = merge_neighbor_labels(v, in_adj, in_maps, with_paths)
                out_maps[v] = out_v
                in_maps[v] = in_v
                if with_paths:
                    out_preds[v] = out_p
                    in_preds[v] = in_p

        out_labels = {v: sort_label(m) for v, m in out_maps.items()}
        in_labels = {v: sort_label(m) for v, m in in_maps.items()}
        fast = None
        if factory is not None:
            fast = factory(hierarchy.gk, out_labels, in_labels)
        return cls(
            hierarchy,
            out_labels,
            in_labels,
            labeling_seconds=time.perf_counter() - started,
            out_preds=out_preds,
            in_preds=in_preds,
            fast=fast,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact directed ``dist_G(source, target)``."""
        if self._fast is not None:
            self._check_vertex(source)
            self._check_vertex(target)
            return self._fast.distance(source, target)
        return self._query(source, target, keep_parents=False)[0]

    def hub_sketch(self, h: Optional[int] = None):
        """The lazily built directed approximate tier
        (:class:`repro.caching.sketch.DirectedHubSketch`); dropped by
        :meth:`invalidate_labels` so it can never serve stale bounds.
        ``h`` pins the entries kept per vertex (a different ``h``
        rebuilds); ``h=None`` reuses the current sketch, falling back
        to the default on first use."""
        from repro.caching.sketch import DEFAULT_SKETCH_H, DirectedHubSketch

        if h is None:
            if self._sketch is None:
                self._sketch = DirectedHubSketch.from_index(
                    self, h=DEFAULT_SKETCH_H
                )
        elif self._sketch is None or self._sketch.out_table.h != h:
            self._sketch = DirectedHubSketch.from_index(self, h=h)
        return self._sketch

    def distances(
        self, pairs: Iterable[Tuple[int, int]], approx: bool = False
    ) -> List[float]:
        """Batch form of :meth:`distance` over an iterable of (s, t) pairs.

        On the fast engine this is a true batch path: one vectorized
        Equation-1 pass over the stacked out/in label arrays, then the
        pooled CSR search (or table reduction) per remaining pair.

        ``approx=True`` answers from the directed hub-sketch tier —
        upper bounds from the top-``h`` out/in label entries (see
        :mod:`repro.caching.sketch`), cached under the ``"approx"``
        namespace on ``cached:*`` engines.
        """
        pairs = list(pairs)
        for s, t in pairs:
            self._check_vertex(s)
            self._check_vertex(t)
        if approx:
            sketch = self.hub_sketch()
            if self._fast is not None and hasattr(self._fast, "distances_via"):
                return self._fast.distances_via(pairs, sketch.bounds)
            return sketch.bounds(pairs)
        if self._fast is not None:
            return self._fast.distances(pairs)
        return [self._query(s, t, keep_parents=False)[0] for s, t in pairs]

    def _query(self, source: int, target: int, keep_parents: bool):
        """Shared query core; returns (distance, search-or-None)."""
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            return 0, None

        out_s = self._label(self._out_labels, source)
        in_t = self._label(self._in_labels, target)
        mu0 = eq1_distance(out_s, in_t)

        gk = self.gk
        seeds_f = [(w, d) for w, d in out_s if gk.has_vertex(w)]
        seeds_r = [(w, d) for w, d in in_t if gk.has_vertex(w)]
        if not seeds_f or not seeds_r:
            return mu0, None

        result = label_bidijkstra(
            lambda v: gk.successors(v).items(),
            lambda v: gk.predecessors(v).items(),
            seeds_f,
            seeds_r,
            initial_mu=mu0,
            keep_parents=keep_parents,
        )
        return result.distance, result

    # ------------------------------------------------------------------
    # Directed shortest paths (§8.1 applied to the directed index)
    # ------------------------------------------------------------------
    def shortest_path(
        self, source: int, target: int
    ) -> Tuple[float, Optional[List[int]]]:
        """Exact directed distance plus one realizing path.

        Requires an index built ``with_paths=True``.  Returns
        ``(inf, None)`` when ``target`` is unreachable.
        """
        if self._out_preds is None or self.hierarchy.hints is None:
            raise QueryError(
                "directed path queries need an index built with with_paths=True"
            )
        distance, search = self._query(source, target, keep_parents=True)
        if math.isinf(distance):
            return math.inf, None
        if source == target:
            return 0, [source]

        if search is None or search.meet_vertex is None:
            out_s = self._label(self._out_labels, source)
            in_t = self._label(self._in_labels, target)
            _, best_w = eq1_distance_argmin(out_s, in_t)
            if best_w == -1:
                raise QueryError(
                    f"query ({source}, {target}) returned {distance} with an "
                    "empty label intersection"
                )
            forward = self._out_label_path(source, best_w)
            backward = self._in_label_path(target, best_w)
        else:
            meet = search.meet_vertex
            forward = self._forward_search_path(source, meet, search.parents_forward)
            backward = self._reverse_search_path(target, meet, search.parents_reverse)
        return distance, forward + backward[1:]

    def _forward_search_path(self, source, meet, parents) -> List[int]:
        """``source -> ... -> meet`` via out-label prefix + G_k arcs."""
        chain = [meet]
        cursor = meet
        while parents[cursor] is not None:
            cursor = parents[cursor]
            chain.append(cursor)
        chain.reverse()  # seed first
        path = self._out_label_path(source, chain[0])
        for a, b in zip(chain, chain[1:]):
            path += self._expand_arc(a, b)[1:]
        return path

    def _reverse_search_path(self, target, meet, parents) -> List[int]:
        """``meet -> ... -> target``: G_k arcs towards the reverse seed,
        then the seed's in-label path into ``target``."""
        chain = [meet]
        cursor = meet
        while parents[cursor] is not None:
            cursor = parents[cursor]
            chain.append(cursor)
        # chain: meet -> ... -> reverse seed; each hop is a G_k arc a -> b.
        path = [meet]
        for a, b in zip(chain, chain[1:]):
            path += self._expand_arc(a, b)[1:]
        tail = self._in_label_path(target, chain[-1])
        return path + tail[1:]

    def _out_label_path(self, v: int, ancestor: int) -> List[int]:
        """The directed path ``v -> ... -> ancestor`` behind an out-entry."""
        path = [v]
        cursor = v
        while cursor != ancestor:
            pred = self._out_preds[cursor][ancestor]
            if pred is None:
                path += self._expand_arc(cursor, ancestor)[1:]
                break
            path += self._expand_arc(cursor, pred)[1:]
            cursor = pred
        return path

    def _in_label_path(self, v: int, ancestor: int) -> List[int]:
        """The directed path ``ancestor -> ... -> v`` behind an in-entry."""
        suffix: List[int] = [v]
        cursor = v
        while cursor != ancestor:
            pred = self._in_preds[cursor][ancestor]
            if pred is None:
                hop = self._expand_arc(ancestor, cursor)
                return hop[:-1] + suffix
            hop = self._expand_arc(pred, cursor)
            suffix = hop[:-1] + suffix
            cursor = pred
        return suffix

    def _expand_arc(self, a: int, b: int) -> List[int]:
        """Expand one (possibly augmenting) arc into original arcs."""
        mid = self.hierarchy.hints.get((a, b))
        if mid is None:
            return [a, b]
        left = self._expand_arc(a, mid)
        right = self._expand_arc(mid, b)
        return left + right[1:]

    def reachable(self, source: int, target: int) -> bool:
        """Directed reachability — the §9 by-product."""
        return not math.isinf(self.distance(source, target))

    def out_label(self, v: int) -> List[Tuple[int, int]]:
        self._check_vertex(v)
        return self._label(self._out_labels, v)

    def in_label(self, v: int) -> List[Tuple[int, int]]:
        self._check_vertex(v)
        return self._label(self._in_labels, v)

    def _label(self, table: Dict[int, List[Tuple[int, int]]], v: int):
        # G_k vertices carry the implicit trivial label — except vertices
        # inserted by §8.3 maintenance, which live in G_k but carry an
        # enriched label that must genuinely be read (the same rule as the
        # undirected facade's _fetch_label).
        if self.hierarchy.in_gk(v) and len(table.get(v, ())) <= 1:
            return [(v, 0)]
        return table[v]

    def _check_vertex(self, v: int) -> None:
        if v not in self.hierarchy.level_of:
            raise QueryError(f"vertex {v} is not covered by this index")

    @property
    def k(self) -> int:
        return self.hierarchy.k

    @property
    def label_entries(self) -> int:
        return sum(len(x) for x in self._out_labels.values()) + sum(
            len(x) for x in self._in_labels.values()
        )
