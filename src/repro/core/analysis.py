"""Index introspection and reporting.

Production indexes need answers to "why is my index this big?" and "where
did the levels stop?".  :func:`hierarchy_report` tabulates the per-level
peeling trace (|L_i|, the |G_i| sizes the σ rule evaluated, shrink
ratios); :func:`label_report` aggregates label-size distribution;
:func:`describe_index` renders both as text (used by tests and notebooks,
and handy in a REPL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.index import ISLabelIndex
from repro.graph.stats import human_bytes

__all__ = ["LevelRow", "hierarchy_report", "label_report", "describe_index"]


@dataclass(frozen=True)
class LevelRow:
    """One level of the peeling trace."""

    level: int
    peeled: int  # |L_i|; 0 for the final G_k row
    graph_size: int  # |G_i| = |V_Gi| + |E_Gi| before peeling this level
    shrink_ratio: float  # |G_{i+1}| / |G_i| (1.0 on the last row)


def hierarchy_report(index: ISLabelIndex) -> List[LevelRow]:
    """Per-level peeling trace of a built index."""
    hierarchy = index.hierarchy
    rows: List[LevelRow] = []
    sizes = hierarchy.sizes
    for i, peeled in enumerate(hierarchy.levels, start=1):
        before = sizes[i - 1]
        after = sizes[i] if i < len(sizes) else before
        rows.append(
            LevelRow(
                level=i,
                peeled=len(peeled),
                graph_size=before,
                shrink_ratio=(after / before) if before else 1.0,
            )
        )
    rows.append(
        LevelRow(
            level=hierarchy.k,
            peeled=0,
            graph_size=sizes[-1],
            shrink_ratio=1.0,
        )
    )
    return rows


def label_report(index: ISLabelIndex) -> Dict[str, float]:
    """Aggregate label-size statistics of a built index."""
    sizes = sorted(len(index.label(v)) for v in index.hierarchy.level_of)
    if not sizes:
        return {"count": 0, "min": 0, "median": 0, "mean": 0.0, "max": 0}
    return {
        "count": len(sizes),
        "min": sizes[0],
        "median": sizes[len(sizes) // 2],
        "mean": sum(sizes) / len(sizes),
        "max": sizes[-1],
    }


def describe_index(index: ISLabelIndex) -> str:
    """A human-readable multi-line description of a built index."""
    st = index.stats
    lines = [
        f"IS-LABEL index: k={st.k}, "
        f"|V|={st.num_vertices}, |E|={st.num_edges}, "
        f"sigma={'-' if st.sigma is None else st.sigma}",
        f"G_k: {st.gk_vertices} vertices, {st.gk_edges} edges",
        f"labels: {st.label_entries} entries "
        f"({human_bytes(st.label_bytes)})",
        "",
        "level  |L_i|   |G_i|     shrink",
        "-----  ------  --------  ------",
    ]
    for row in hierarchy_report(index):
        peeled = str(row.peeled) if row.peeled else "(G_k)"
        lines.append(
            f"{row.level:>5}  {peeled:>6}  {row.graph_size:>8}  "
            f"{row.shrink_ratio:>6.3f}"
        )
    stats = label_report(index)
    lines.append("")
    lines.append(
        f"label entries per vertex: min {stats['min']}, "
        f"median {stats['median']}, mean {stats['mean']:.2f}, "
        f"max {stats['max']}"
    )
    return "\n".join(lines)
