"""Persisting built indexes to real files and back.

The simulated :class:`LabelStore` models query-time I/O *costs*; this module
covers the orthogonal need of shipping a built index between processes.  The
format is a little-endian binary dump of everything :class:`ISLabelIndex`
holds: level numbers, per-level removal adjacency, ``G_k``, labels (with
predecessors when present) and augmenting-edge hints.  Directed indexes
(:class:`DirectedISLabelIndex`) have their own format with per-direction
adjacency, labels and predecessors.

Dynamic state (§8.3) persists too: :func:`save_dynamic_index` /
:func:`save_dynamic_directed_index` prepend the update counters and the
*live* graph to the embedded index dump, so a
:class:`repro.core.updates.DynamicISLabelIndex` /
:class:`~repro.core.updates.DynamicDirectedISLabelIndex` round-trips with
its patched labels, staleness counters and approximate flag intact and the
loader re-attaches a registered engine over the patched labels.  (Indexes
built in disk-storage mode reload in memory mode — the label *contents*
are identical; the simulated store is a cost model, not state.)

Orthogonal to the stream format, :func:`save_snapshot` writes the
**zero-copy serving snapshot** of :mod:`repro.core.snapshot` — raw aligned
dumps of the frozen engine arrays plus the facade's coverage metadata.
:func:`load_index` / :func:`load_directed_index` sniff the magic, so one
loader serves both formats; pass ``engine="mmap"`` (or ``"sharded"``) to
serve a snapshot straight from the page cache with no per-entry parsing.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.directed import DirectedHierarchy, DirectedISLabelIndex
from repro.core.engines import CACHED_PREFIX, DIRECTED, UNDIRECTED, resolve_engine
from repro.core.fastdirected import DirectedFastEngine
from repro.core.fastlabels import FastEngine, PackedEngineBase
from repro.core.hierarchy import VertexHierarchy
from repro.core.index import ISLabelIndex
from repro.core.snapshot import (
    KIND_DIRECTED,
    KIND_UNDIRECTED,
    DirectedMmapEngine,
    DirectedShardedEngine,
    MmapEngine,
    ShardedEngine,
    Snapshot,
    SnapshotLabels,
    is_snapshot_path,
    open_snapshot,
    write_snapshot,
)
from repro.core.updates import DynamicDirectedISLabelIndex, DynamicISLabelIndex
from repro.errors import StorageError

# Imported for its registration side effect: the serving layer registers
# the "remote" engine for both orientations, so load_index(...,
# engine="remote") and the CLI --engine choices see it whenever the
# library is importable.  (repro.serving deliberately avoids importing
# this module back; repro.serving.server does, but only at call time.)
import repro.serving  # noqa: F401  (registration side effect)
from repro.extmem.iomodel import CostModel
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = [
    "save_index",
    "load_index",
    "is_directed_artifact",
    "save_directed_index",
    "load_directed_index",
    "save_snapshot",
    "save_dynamic_index",
    "load_dynamic_index",
    "save_dynamic_directed_index",
    "load_dynamic_directed_index",
]

_MAGIC = b"ISLX"
_VERSION = 1


def is_directed_artifact(path) -> bool:
    """True when ``path`` holds a *directed* stream index or snapshot.

    The one place the directed/undirected sniff lives (stream magic or
    snapshot kind); the CLI and the serving layer both route through it
    so a future format change cannot desynchronize them.
    """
    if is_snapshot_path(path):
        return open_snapshot(path).kind == KIND_DIRECTED
    with open(path, "rb") as fh:
        return fh.read(len(_DMAGIC)) == _DMAGIC

_HEADER = struct.Struct("<4sHBdq")  # magic, version, flags, sigma, k
_COUNT = struct.Struct("<q")
_PAIR = struct.Struct("<qq")
_TRIPLE = struct.Struct("<qqq")

_FLAG_WITH_PATHS = 1
_NO_SIGMA = -1.0
_NO_PRED = -(2 ** 62)

PathLike = Union[str, Path]


def _read_header_bytes(fh: BinaryIO, path: PathLike, size: int) -> bytes:
    """Read an exact header block or raise a diagnosable StorageError.

    Truncated and empty files must fail with the path and the observed
    size — not a raw ``struct.error`` from unpacking a short buffer —
    so a caller staring at a corrupt artifact knows *which* file is bad
    and how short it is.
    """
    data = fh.read(size)
    if len(data) == size:
        return data
    try:
        observed = os.path.getsize(os.fspath(path))
        detail = f"file is {observed} bytes"
    except OSError:
        detail = f"read {len(data)} bytes"
    raise StorageError(
        f"{path}: truncated or empty index file "
        f"({detail}, header needs {size})"
    )


def save_index(index: ISLabelIndex, path: PathLike) -> int:
    """Write ``index`` to ``path``; returns bytes written."""
    with open(path, "wb") as fh:
        _write_index(fh, index)
        return fh.tell()


def _write_index(fh: BinaryIO, index: ISLabelIndex) -> None:
    """Serialize one undirected index into an open stream."""
    hierarchy = index.hierarchy
    with_paths = index._preds is not None and hierarchy.hints is not None
    flags = _FLAG_WITH_PATHS if with_paths else 0
    sigma = hierarchy.sigma if hierarchy.sigma is not None else _NO_SIGMA
    fh.write(_HEADER.pack(_MAGIC, _VERSION, flags, sigma, hierarchy.k))

    _write_count(fh, len(hierarchy.sizes))
    for size in hierarchy.sizes:
        fh.write(_COUNT.pack(size))

    # Per-level removal adjacency.
    for peeled in hierarchy.levels:
        _write_count(fh, len(peeled))
        for v, adjacency in peeled.items():
            fh.write(_PAIR.pack(v, len(adjacency)))
            for u, w in adjacency:
                fh.write(_PAIR.pack(u, w))

    # G_k.
    _write_count(fh, hierarchy.gk.num_vertices)
    for v in hierarchy.gk.sorted_vertices():
        fh.write(_COUNT.pack(v))
    edges = list(hierarchy.gk.edges())
    _write_count(fh, len(edges))
    for u, v, w in edges:
        fh.write(_TRIPLE.pack(u, v, w))

    # Labels (with predecessors when present).
    _write_count(fh, len(index._labels))
    for v, entries in index._labels.items():
        fh.write(_PAIR.pack(v, len(entries)))
        preds = index._preds[v] if with_paths else None
        for w, d in entries:
            if with_paths:
                pred = preds[w]
                fh.write(_TRIPLE.pack(w, d, _NO_PRED if pred is None else pred))
            else:
                fh.write(_PAIR.pack(w, d))

    # Hints.
    if with_paths:
        hints = hierarchy.hints
        _write_count(fh, len(hints))
        for (u, w), mid in hints.items():
            fh.write(_TRIPLE.pack(u, w, mid))


def load_index(
    path: PathLike,
    cost_model: Optional[CostModel] = None,
    engine: str = "fast",
) -> ISLabelIndex:
    """Load an index saved by :func:`save_index` (memory-storage mode).

    ``engine`` selects the query backend of the loaded index, matching
    :meth:`ISLabelIndex.build`: ``"fast"`` (default) re-freezes the labels
    and ``G_k`` into the array/CSR engine, ``"dict"`` keeps the reference
    structures only.  Names resolve through the shared engine registry
    (:mod:`repro.core.engines`); the on-disk format is engine-independent.

    ``path`` may also be a serving snapshot written by
    :func:`save_snapshot` (file or sharded directory) — the magic is
    sniffed, and ``engine="mmap"`` / ``"sharded"`` then serve it zero-copy
    straight from the mapped sections.
    """
    factory = resolve_engine(UNDIRECTED, engine)
    if is_snapshot_path(path):
        return _load_snapshot_index(path, cost_model, engine)
    with open(path, "rb") as fh:
        index = _read_index(fh, path, cost_model)
    if factory is not None:
        index.attach_fast_engine(engine)
    return index


def _read_index(
    fh: BinaryIO, path: PathLike, cost_model: Optional[CostModel]
) -> ISLabelIndex:
    """Deserialize one undirected index (no engine attached) from a stream."""
    header = _read_header_bytes(fh, path, _HEADER.size)
    magic, version, flags, sigma, k = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise StorageError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise StorageError(f"{path}: unsupported version {version}")
    with_paths = bool(flags & _FLAG_WITH_PATHS)

    sizes = [_read_count(fh) for _ in range(_read_count(fh))]

    levels: List[Dict[int, List[Tuple[int, int]]]] = []
    level_of: Dict[int, int] = {}
    for i in range(1, k):
        count = _read_count(fh)
        peeled: Dict[int, List[Tuple[int, int]]] = {}
        for _ in range(count):
            v, degree = _read_pair(fh)
            peeled[v] = [_read_pair(fh) for _ in range(degree)]
            level_of[v] = i
        levels.append(peeled)

    gk = Graph()
    for _ in range(_read_count(fh)):
        v = _read_count(fh)
        gk.add_vertex(v)
        level_of[v] = k
    for _ in range(_read_count(fh)):
        u, v, w = _read_triple(fh)
        gk.add_edge(u, v, w)

    labels: Dict[int, List[Tuple[int, int]]] = {}
    preds: Optional[Dict[int, Dict[int, Optional[int]]]] = (
        {} if with_paths else None
    )
    for _ in range(_read_count(fh)):
        v, count = _read_pair(fh)
        entries: List[Tuple[int, int]] = []
        pred_v: Dict[int, Optional[int]] = {}
        for _ in range(count):
            if with_paths:
                w, d, pred = _read_triple(fh)
                entries.append((w, d))
                pred_v[w] = None if pred == _NO_PRED else pred
            else:
                entries.append(_read_pair(fh))
        labels[v] = entries
        if preds is not None:
            preds[v] = pred_v

    hints = None
    if with_paths:
        hints = {}
        for _ in range(_read_count(fh)):
            u, w, mid = _read_triple(fh)
            hints[(u, w)] = mid

    hierarchy = VertexHierarchy(
        levels=levels,
        gk=gk,
        level_of=level_of,
        sizes=sizes,
        sigma=None if sigma == _NO_SIGMA else sigma,
        hints=hints,
    )
    hierarchy.validate_level_numbers()
    return ISLabelIndex(
        hierarchy=hierarchy,
        labels=labels,
        preds=preds,
        store=None,
        cost_model=cost_model or CostModel(),
        labeling_seconds=0.0,
    )


# ----------------------------------------------------------------------
# Directed indexes (§8.2)
# ----------------------------------------------------------------------
_DMAGIC = b"ISLD"


def save_directed_index(index: DirectedISLabelIndex, path: PathLike) -> int:
    """Write a directed index to ``path``; returns bytes written."""
    with open(path, "wb") as fh:
        _write_directed_index(fh, index)
        return fh.tell()


def _write_directed_index(fh: BinaryIO, index: DirectedISLabelIndex) -> None:
    """Serialize one directed index into an open stream."""
    hierarchy = index.hierarchy
    with_paths = index._out_preds is not None and hierarchy.hints is not None
    flags = _FLAG_WITH_PATHS if with_paths else 0
    sigma = hierarchy.sigma if hierarchy.sigma is not None else _NO_SIGMA
    fh.write(_HEADER.pack(_DMAGIC, _VERSION, flags, sigma, hierarchy.k))

    _write_count(fh, len(hierarchy.sizes))
    for size in hierarchy.sizes:
        fh.write(_COUNT.pack(size))

    # Per-level removal adjacency, both directions.
    for peeled in hierarchy.levels:
        _write_count(fh, len(peeled))
        for v, (in_adj, out_adj) in peeled.items():
            fh.write(_TRIPLE.pack(v, len(in_adj), len(out_adj)))
            for u, w in in_adj:
                fh.write(_PAIR.pack(u, w))
            for u, w in out_adj:
                fh.write(_PAIR.pack(u, w))

    # G_k arcs.
    _write_count(fh, hierarchy.gk.num_vertices)
    for v in sorted(hierarchy.gk.vertices()):
        fh.write(_COUNT.pack(v))
    arcs = sorted(hierarchy.gk.edges())
    _write_count(fh, len(arcs))
    for u, v, w in arcs:
        fh.write(_TRIPLE.pack(u, v, w))

    # Out- and in-labels (with predecessors when present).
    for table, preds in (
        (index._out_labels, index._out_preds),
        (index._in_labels, index._in_preds),
    ):
        _write_count(fh, len(table))
        for v, entries in table.items():
            fh.write(_PAIR.pack(v, len(entries)))
            pred_v = preds[v] if with_paths else None
            for w, d in entries:
                if with_paths:
                    pred = pred_v[w]
                    fh.write(
                        _TRIPLE.pack(w, d, _NO_PRED if pred is None else pred)
                    )
                else:
                    fh.write(_PAIR.pack(w, d))

    # Arc hints.
    if with_paths:
        _write_count(fh, len(hierarchy.hints))
        for (u, w), mid in hierarchy.hints.items():
            fh.write(_TRIPLE.pack(u, w, mid))


def load_directed_index(
    path: PathLike, engine: str = "fast"
) -> DirectedISLabelIndex:
    """Load a directed index saved by :func:`save_directed_index`.

    ``engine`` mirrors :func:`load_index`: ``"fast"`` (default) attaches a
    :class:`repro.core.fastdirected.DirectedFastEngine` over the loaded
    labels and ``G_k``, ``"dict"`` keeps the reference structures only.
    Snapshot paths (see :func:`save_snapshot`) are sniffed and served
    zero-copy under ``engine="mmap"`` / ``"sharded"``.
    """
    factory = resolve_engine(DIRECTED, engine)
    if is_snapshot_path(path):
        return _load_directed_snapshot_index(path, engine)
    with open(path, "rb") as fh:
        index = _read_directed_index(fh, path)
    if factory is not None:
        index.attach_fast_engine(engine)
    return index


def _read_directed_index(fh: BinaryIO, path: PathLike) -> DirectedISLabelIndex:
    """Deserialize one directed index (no engine attached) from a stream."""
    header = _read_header_bytes(fh, path, _HEADER.size)
    magic, version, flags, sigma, k = _HEADER.unpack(header)
    if magic != _DMAGIC:
        raise StorageError(f"{path}: bad magic {magic!r} (not a directed index)")
    if version != _VERSION:
        raise StorageError(f"{path}: unsupported version {version}")
    with_paths = bool(flags & _FLAG_WITH_PATHS)

    sizes = [_read_count(fh) for _ in range(_read_count(fh))]

    levels: List[Dict[int, Tuple[list, list]]] = []
    level_of: Dict[int, int] = {}
    for i in range(1, k):
        count = _read_count(fh)
        peeled: Dict[int, Tuple[list, list]] = {}
        for _ in range(count):
            v, in_deg, out_deg = _read_triple(fh)
            in_adj = [_read_pair(fh) for _ in range(in_deg)]
            out_adj = [_read_pair(fh) for _ in range(out_deg)]
            peeled[v] = (in_adj, out_adj)
            level_of[v] = i
        levels.append(peeled)

    gk = DiGraph()
    for _ in range(_read_count(fh)):
        v = _read_count(fh)
        gk.add_vertex(v)
        level_of[v] = k
    for _ in range(_read_count(fh)):
        u, v, w = _read_triple(fh)
        gk.add_edge(u, v, w)

    def read_label_table():
        table: Dict[int, list] = {}
        preds: Optional[Dict[int, Dict[int, Optional[int]]]] = (
            {} if with_paths else None
        )
        for _ in range(_read_count(fh)):
            v, count = _read_pair(fh)
            entries = []
            pred_v: Dict[int, Optional[int]] = {}
            for _ in range(count):
                if with_paths:
                    w, d, pred = _read_triple(fh)
                    entries.append((w, d))
                    pred_v[w] = None if pred == _NO_PRED else pred
                else:
                    entries.append(_read_pair(fh))
            table[v] = entries
            if preds is not None:
                preds[v] = pred_v
        return table, preds

    out_labels, out_preds = read_label_table()
    in_labels, in_preds = read_label_table()

    hints = None
    if with_paths:
        hints = {}
        for _ in range(_read_count(fh)):
            u, w, mid = _read_triple(fh)
            hints[(u, w)] = mid

    hierarchy = DirectedHierarchy(
        levels=levels,
        gk=gk,
        level_of=level_of,
        sizes=sizes,
        sigma=None if sigma == _NO_SIGMA else sigma,
        hints=hints,
    )
    return DirectedISLabelIndex(
        hierarchy=hierarchy,
        out_labels=out_labels,
        in_labels=in_labels,
        labeling_seconds=0.0,
        out_preds=out_preds,
        in_preds=in_preds,
    )


# ----------------------------------------------------------------------
# Serving snapshots: zero-copy engine arrays + facade coverage metadata
# ----------------------------------------------------------------------
def save_snapshot(
    index: Union[ISLabelIndex, DirectedISLabelIndex],
    path: PathLike,
    shards: int = 1,
    checksum: bool = False,
) -> int:
    """Write ``index`` as a zero-copy serving snapshot; returns bytes.

    The snapshot holds the *frozen engine state* — packed label arrays
    with their pre-extracted seeds, the ``G_k`` CSR arrays and the
    optional all-pairs table — plus the coverage metadata the facade needs
    (vertex levels, ``k``, ``sigma``, the size trace).  ``shards=1``
    writes one file; ``shards > 1`` writes a directory of vertex-id-range
    label shards around a small shared file, the layout the ``"sharded"``
    engine serves.  Load with :func:`load_index` /
    :func:`load_directed_index` and ``engine="mmap"`` or ``"sharded"``.

    Works for any attached engine: a :class:`PackedEngineBase` engine is
    snapshotted directly (frozen first if needed); a dict-engine index is
    packed through a transient fast engine.  Path-reconstruction state
    (``with_paths``) and dynamic counters are *not* captured — snapshots
    are static serving artifacts; use the stream format for those.

    ``checksum=True`` adds a CRC32 per snapshot section, verified lazily
    on the section's first map; corruption then loads as a loud
    :class:`StorageError` naming the section and file.
    """
    directed = isinstance(index, DirectedISLabelIndex)
    engine = index._fast
    if not isinstance(engine, PackedEngineBase):
        if directed:
            engine = DirectedFastEngine(
                index.gk, index._out_labels, index._in_labels
            )
        else:
            engine = FastEngine(index.gk, index._labels)
    hierarchy = index.hierarchy
    cov_keys = np.array(sorted(hierarchy.level_of), dtype=np.int64)
    cov_levels = np.array(
        [hierarchy.level_of[int(v)] for v in cov_keys], dtype=np.int64
    )
    meta = {
        "k": hierarchy.k,
        "sigma": hierarchy.sigma,
        "sizes": list(hierarchy.sizes),
    }
    return write_snapshot(
        os.fspath(path),
        engine,
        extra_sections={"cov_keys": cov_keys, "cov_levels": cov_levels},
        meta=meta,
        shards=shards,
        checksum=checksum,
    )


def _snapshot_coverage(snap: Snapshot, path: PathLike) -> Dict[int, int]:
    coverage = snap.coverage()
    if coverage is None:
        raise StorageError(
            f"{path}: snapshot has no coverage sections (engine-internal "
            "spill?); re-create it with save_snapshot"
        )
    keys, levels = coverage
    return dict(zip(keys.tolist(), levels.tolist()))


def _attach_snapshot_engine(index, kind: str, engine: str, path, gk) -> None:
    """Attach the requested backend to a snapshot-loaded facade."""
    factory = resolve_engine(kind, engine)  # validates the name
    if engine.startswith(CACHED_PREFIX):
        # Attach the base engine by recursion, then decorate whatever it
        # produced — the cached tier is orthogonal to how labels load.
        from repro.caching.engine import CachedEngine, cache_entries_from_env
        from repro.caching.engine import cache_ttl_from_env

        base = engine[len(CACHED_PREFIX) :]
        _attach_snapshot_engine(index, kind, base, path, gk)
        # A remote inner serves a fleet whose index can drift away from
        # this client's static snapshot G_k — the invalidation token
        # would never see the delta, so hand it no G_k at all and every
        # dirty invalidation degrades to the (sound) full flush.
        index._fast = CachedEngine(
            index._fast,
            gk=None if base == "remote" else gk,
            directed=(kind == DIRECTED),
            max_entries=cache_entries_from_env(),
            ttl_s=cache_ttl_from_env(),
        )
    elif engine == "mmap":
        cls = MmapEngine if kind == UNDIRECTED else DirectedMmapEngine
        index._fast = cls.from_snapshot(gk, os.fspath(path))
    elif engine == "sharded":
        cls = ShardedEngine if kind == UNDIRECTED else DirectedShardedEngine
        index._fast = cls.from_snapshot(gk, os.fspath(path))
    elif factory is not None:
        # Heap engines re-pack from the (lazily materialized) label view.
        index.attach_fast_engine(engine)


def _load_snapshot_index(
    path: PathLike, cost_model: Optional[CostModel], engine: str
) -> ISLabelIndex:
    snap = open_snapshot(path)
    if snap.kind != KIND_UNDIRECTED:
        raise StorageError(
            f"{path}: directed snapshot; use load_directed_index"
        )
    gk = snap.gk_graph()
    level_of = _snapshot_coverage(snap, path)
    k = int(snap.meta.get("k", 1))
    hierarchy = VertexHierarchy(
        levels=[{} for _ in range(max(k - 1, 0))],
        gk=gk,
        level_of=level_of,
        sizes=list(snap.meta.get("sizes") or []),
        sigma=snap.meta.get("sigma"),
        hints=None,
    )
    labels = SnapshotLabels(snap.label_table("lab"))
    index = ISLabelIndex(
        hierarchy=hierarchy,
        labels=labels,
        preds=None,
        store=None,
        cost_model=cost_model or CostModel(),
        labeling_seconds=0.0,
    )
    _attach_snapshot_engine(index, UNDIRECTED, engine, path, gk)
    return index


def _load_directed_snapshot_index(
    path: PathLike, engine: str
) -> DirectedISLabelIndex:
    snap = open_snapshot(path)
    if snap.kind != KIND_DIRECTED:
        raise StorageError(f"{path}: undirected snapshot; use load_index")
    gk = snap.gk_graph()
    level_of = _snapshot_coverage(snap, path)
    k = int(snap.meta.get("k", 1))
    hierarchy = DirectedHierarchy(
        levels=[{} for _ in range(max(k - 1, 0))],
        gk=gk,
        level_of=level_of,
        sizes=list(snap.meta.get("sizes") or []),
        sigma=snap.meta.get("sigma"),
        hints=None,
    )
    index = DirectedISLabelIndex(
        hierarchy=hierarchy,
        out_labels=SnapshotLabels(snap.label_table("out")),
        in_labels=SnapshotLabels(snap.label_table("in")),
        labeling_seconds=0.0,
    )
    _attach_snapshot_engine(index, DIRECTED, engine, path, gk)
    return index


# ----------------------------------------------------------------------
# Dynamic indexes (§8.3): counters + live graph + embedded index dump
# ----------------------------------------------------------------------
_DYN_MAGIC = b"ISLY"
_DYN_DMAGIC = b"ISLZ"
_DYN_HEADER = struct.Struct("<4sHqqB")  # magic, version, inserts, deletes, approx


def save_dynamic_index(dyn: DynamicISLabelIndex, path: PathLike) -> int:
    """Write a dynamic index (live graph + patched index + counters)."""
    with open(path, "wb") as fh:
        fh.write(
            _DYN_HEADER.pack(
                _DYN_MAGIC,
                _VERSION,
                dyn.inserts_applied,
                dyn.deletes_applied,
                1 if dyn.approximate else 0,
            )
        )
        _write_build_kwargs(fh, dyn._build_kwargs)
        _write_graph(fh, sorted(dyn.graph.vertices()), dyn.graph.edges())
        _write_index(fh, dyn.index)
        return fh.tell()


def load_dynamic_index(
    path: PathLike,
    cost_model: Optional[CostModel] = None,
    engine: str = "fast",
) -> DynamicISLabelIndex:
    """Load a dynamic index saved by :func:`save_dynamic_index`.

    The restored index resumes exactly where it left off: patched labels,
    staleness counters, the ``approximate`` flag *and the original build
    parameters* (``k``/``sigma``/``full``/... — so a later ``rebuild()``
    reproduces the saved configuration) survive.  The selected ``engine``
    (resolved through the registry, ``"fast"`` by default) serves queries,
    keeps absorbing §8.3 updates, and is what future rebuilds use.
    """
    factory = resolve_engine(UNDIRECTED, engine)
    with open(path, "rb") as fh:
        inserts, deletes, approximate = _read_dynamic_header(fh, path, _DYN_MAGIC)
        build_kwargs = _read_build_kwargs(fh, path)
        graph = _read_graph(fh, Graph())
        index = _read_index(fh, path, cost_model)
    if factory is not None:
        index.attach_fast_engine(engine)
    build_kwargs["engine"] = engine
    return DynamicISLabelIndex.from_parts(
        graph,
        index,
        inserts_applied=inserts,
        deletes_applied=deletes,
        approximate=approximate,
        build_kwargs=build_kwargs,
    )


def save_dynamic_directed_index(
    dyn: DynamicDirectedISLabelIndex, path: PathLike
) -> int:
    """Write a dynamic directed index (live digraph + index + counters)."""
    with open(path, "wb") as fh:
        fh.write(
            _DYN_HEADER.pack(
                _DYN_DMAGIC,
                _VERSION,
                dyn.inserts_applied,
                dyn.deletes_applied,
                1 if dyn.approximate else 0,
            )
        )
        _write_build_kwargs(fh, dyn._build_kwargs)
        _write_graph(fh, sorted(dyn.graph.vertices()), sorted(dyn.graph.edges()))
        _write_directed_index(fh, dyn.index)
        return fh.tell()


def load_dynamic_directed_index(
    path: PathLike, engine: str = "fast"
) -> DynamicDirectedISLabelIndex:
    """Load a dynamic directed index saved by
    :func:`save_dynamic_directed_index` (mirrors :func:`load_dynamic_index`)."""
    factory = resolve_engine(DIRECTED, engine)
    with open(path, "rb") as fh:
        inserts, deletes, approximate = _read_dynamic_header(fh, path, _DYN_DMAGIC)
        build_kwargs = _read_build_kwargs(fh, path)
        graph = _read_graph(fh, DiGraph())
        index = _read_directed_index(fh, path)
    if factory is not None:
        index.attach_fast_engine(engine)
    build_kwargs["engine"] = engine
    return DynamicDirectedISLabelIndex.from_parts(
        graph,
        index,
        inserts_applied=inserts,
        deletes_applied=deletes,
        approximate=approximate,
        build_kwargs=build_kwargs,
    )


def _read_dynamic_header(fh: BinaryIO, path: PathLike, expected: bytes):
    header = _read_header_bytes(fh, path, _DYN_HEADER.size)
    magic, version, inserts, deletes, approx = _DYN_HEADER.unpack(header)
    if magic != expected:
        raise StorageError(f"{path}: bad magic {magic!r} (not a dynamic index)")
    if version != _VERSION:
        raise StorageError(f"{path}: unsupported version {version}")
    return inserts, deletes, bool(approx)


def _write_build_kwargs(fh: BinaryIO, kwargs: Dict) -> None:
    """Persist the dynamic index's build kwargs (a rebuild() must reproduce
    the saved configuration).  JSON-encoded; non-JSON values (e.g. a custom
    ``cost_model`` object) are skipped — those revert to defaults on load."""
    safe = {}
    for key, value in kwargs.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        safe[key] = value
    blob = json.dumps(safe, sort_keys=True).encode("utf-8")
    _write_count(fh, len(blob))
    fh.write(blob)


def _read_build_kwargs(fh: BinaryIO, path: PathLike) -> Dict:
    size = _read_count(fh)
    blob = fh.read(size)
    if len(blob) != size:
        raise StorageError(f"{path}: truncated build-kwargs block")
    return json.loads(blob.decode("utf-8"))


def _write_graph(fh: BinaryIO, vertices, edges) -> None:
    """Write a vertex list + weighted edge/arc list."""
    _write_count(fh, len(vertices))
    for v in vertices:
        fh.write(_COUNT.pack(v))
    edges = list(edges)
    _write_count(fh, len(edges))
    for u, v, w in edges:
        fh.write(_TRIPLE.pack(u, v, w))


def _read_graph(fh: BinaryIO, graph):
    """Read a graph written by :func:`_write_graph` into ``graph``."""
    for _ in range(_read_count(fh)):
        graph.add_vertex(_read_count(fh))
    for _ in range(_read_count(fh)):
        u, v, w = _read_triple(fh)
        graph.add_edge(u, v, w)
    return graph


def _write_count(fh: BinaryIO, value: int) -> None:
    fh.write(_COUNT.pack(value))


def _read_count(fh: BinaryIO) -> int:
    data = fh.read(_COUNT.size)
    if len(data) != _COUNT.size:
        raise StorageError("truncated index file")
    return _COUNT.unpack(data)[0]


def _read_pair(fh: BinaryIO) -> Tuple[int, int]:
    data = fh.read(_PAIR.size)
    if len(data) != _PAIR.size:
        raise StorageError("truncated index file")
    return _PAIR.unpack(data)


def _read_triple(fh: BinaryIO) -> Tuple[int, int, int]:
    data = fh.read(_TRIPLE.size)
    if len(data) != _TRIPLE.size:
        raise StorageError("truncated index file")
    return _TRIPLE.unpack(data)
