"""Dynamic update maintenance — §8.3, served from the fast engine.

The paper's scheme is deliberately *lazy*: inserted vertices join ``G_k``,
their low-level neighbours' labels (and those neighbours' descendants) learn
about them, deleted vertices are scrubbed from the labels that mention them,
and "we can rebuild the index periodically".

Faithfulness notes (see also DESIGN.md):

* **Insertions.**  We implement the paper's descendant propagation and add
  one engineering extension the text implies but does not spell out: the new
  vertex also receives a proper label (the min-merge of its neighbours'
  labels, shifted by the connecting edge weights) so that queries between
  the new vertex and arbitrary old vertices keep working through label
  intersection.  After insertions, answers remain *upper bounds* that are
  exact whenever the interleaving shortest path is covered by the patched
  labels — the common case the paper relies on; :meth:`staleness` counts
  applied updates and :meth:`rebuild` restores exactness guarantees.
* **Deletions.**  Removing a vertex can invalidate augmenting edges that
  route through it, so deletions mark the index ``approximate`` (query
  results may then be under- *or* over-estimates until rebuild), matching
  the paper's rebuild-periodically stance.

Engine integration: §8.3 patching mutates the index's entry lists and
``G_k`` in place — structures the packed engines snapshot at freeze time.
Each update therefore records the set of vertices whose labels changed and
reports it through the facade's ``invalidate_labels(dirty)``
(:meth:`repro.core.index.ISLabelIndex.invalidate_labels`); the fast
engines then re-pack just the dirty labels and repair their ``G_k``
structures in place (see
:meth:`repro.core.fastlabels.PackedEngineBase.invalidate`), so a dynamic
index keeps serving queries from the packed-array hot path between
updates instead of silently degrading to the dict reference.  The dict
engine remains available (``engine="dict"``) as the correctness oracle:
all engines run the same label maintenance, so their answers agree
exactly after arbitrary update/query interleavings.

:class:`DynamicDirectedISLabelIndex` applies the same scheme to the §8.2
directed index: an inserted vertex's *out*-arcs patch the in-labels of the
arc heads' in-descendants (vertices the head can reach), its *in*-arcs
patch the out-labels of the arc tails' out-descendants, and the new vertex
receives merged out/in labels of its own.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.directed import DirectedISLabelIndex
from repro.core.index import ISLabelIndex, QueryResult
from repro.errors import GraphError, QueryError, StaleIndexError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = ["DynamicISLabelIndex", "DynamicDirectedISLabelIndex"]

LabelTable = Dict[int, List[Tuple[int, int]]]


def _descendant_map(labels: LabelTable) -> Dict[int, Set[int]]:
    """``ancestor -> vertices whose label mentions it`` for one table."""
    table: Dict[int, Set[int]] = {}
    for v, entries in labels.items():
        for w, _ in entries:
            if w != v:
                table.setdefault(w, set()).add(v)
    return table


def _entries_mentioning(
    labels: LabelTable, descendants: Dict[int, Set[int]], v: int
) -> Iterable[Tuple[int, int]]:
    """Yield ``(w, d)`` for every vertex ``w`` whose label has ``(v, d)``."""
    for w in descendants.get(v, ()):  # descendants of v
        for anc, d in labels.get(w, ()):
            if anc == v:
                yield (w, d)
                break


def _patch_label(
    labels: LabelTable,
    descendants: Dict[int, Set[int]],
    w: int,
    new_vertex: int,
    distance: int,
) -> bool:
    """Min-merge entry ``(new_vertex, distance)`` into ``labels[w]``.

    Returns True when the label actually changed (callers mark ``w`` dirty
    and flush it to any disk store only then).
    """
    label = labels[w]
    for pos, (anc, d) in enumerate(label):
        if anc == new_vertex:
            if distance < d:
                label[pos] = (new_vertex, distance)
                return True
            return False
        if anc > new_vertex:
            label.insert(pos, (new_vertex, distance))
            descendants.setdefault(new_vertex, set()).add(w)
            return True
    label.append((new_vertex, distance))
    descendants.setdefault(new_vertex, set()).add(w)
    return True


class DynamicISLabelIndex:
    """An :class:`ISLabelIndex` plus §8.3 update maintenance.

    Keeps the live graph alongside the index so that updates can be applied
    to both and :meth:`rebuild` can re-index from scratch.  Queries are
    served by whichever engine the index was built with (``"fast"`` by
    default — each update invalidates the engine incrementally, so the
    packed hot path keeps answering between updates); build with
    ``engine="dict"`` for the reference oracle.
    """

    def __init__(self, graph: Graph, **build_kwargs) -> None:
        if build_kwargs.get("with_paths"):
            raise QueryError("dynamic maintenance supports distance-only indexes")
        self.graph = graph.copy()
        self._build_kwargs = dict(build_kwargs)
        self.index = ISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._descendants: Optional[Dict[int, Set[int]]] = None

    @classmethod
    def from_parts(
        cls,
        graph: Graph,
        index: ISLabelIndex,
        inserts_applied: int = 0,
        deletes_applied: int = 0,
        approximate: bool = False,
        build_kwargs: Optional[Dict] = None,
    ) -> "DynamicISLabelIndex":
        """Adopt an existing live graph + index without rebuilding.

        Used by :func:`repro.core.serialization.load_dynamic_index` to
        restore saved dynamic state; ``build_kwargs`` seed the next
        :meth:`rebuild` (the engine defaults to the loaded index's).
        """
        self = cls.__new__(cls)
        self.graph = graph
        self._build_kwargs = dict(build_kwargs or {})
        self._build_kwargs.setdefault("engine", index.engine)
        self.index = index
        self.inserts_applied = inserts_applied
        self.deletes_applied = deletes_applied
        self.approximate = approximate
        self._descendants = None
        return self

    @property
    def engine(self) -> str:
        """Registry name of the serving backend (see ``ISLabelIndex.engine``)."""
        return self.index.engine

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_vertex(self, vertex: int, adjacency: Mapping[int, int]) -> None:
        """Insert ``vertex`` with ``{neighbour: weight}`` edges (§8.3).

        The vertex is added to ``G_k``; labels of low-level neighbours and
        their descendants are patched; the new vertex receives a merged
        label of its own.  The touched vertices are reported to the query
        engine, which re-packs only their labels.
        """
        if self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} already exists")
        if not adjacency:
            raise GraphError("§8.3 insertion requires a non-empty adjacency list")
        for v in adjacency:
            if not self.graph.has_vertex(v):
                raise GraphError(f"insertion references unknown vertex {v}")

        self.graph.add_vertex(vertex)
        for v, w in adjacency.items():
            self.graph.add_edge(vertex, v, w)

        index = self.index
        labels = index._labels
        hierarchy = index.hierarchy
        descendants = self._descendant_map()
        dirty: Set[int] = {vertex}

        # The new vertex lives in G_k at level k.
        hierarchy.gk.add_vertex(vertex)
        hierarchy.level_of[vertex] = hierarchy.k
        own_label: Dict[int, int] = {vertex: 0}

        for v, weight in adjacency.items():
            if hierarchy.in_gk(v):
                hierarchy.gk.add_edge(vertex, v, weight)
                own_label[v] = min(own_label.get(v, math.inf), weight)
                continue
            # Patch v itself, then every descendant of v, with the distance
            # through the new edge (v, vertex).
            if _patch_label(labels, descendants, v, vertex, weight):
                dirty.add(v)
                self._flush(v)
            for w, d_wv in _entries_mentioning(labels, descendants, v):
                if _patch_label(labels, descendants, w, vertex, d_wv + weight):
                    dirty.add(w)
                    self._flush(w)
            # Extension: the new vertex learns v's ancestors.
            for w, d in labels[v]:
                candidate = weight + d
                if candidate < own_label.get(w, math.inf):
                    own_label[w] = candidate

        labels[vertex] = sorted(own_label.items())
        for w in own_label:
            if w != vertex:
                descendants.setdefault(w, set()).add(vertex)
        self._flush(vertex)
        self.inserts_applied += 1
        index.invalidate_labels(dirty)

    def delete_vertex(self, vertex: int) -> None:
        """Delete ``vertex`` and its incident edges (§8.3 lazy deletion)."""
        if not self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} does not exist")
        self.graph.remove_vertex(vertex)

        index = self.index
        hierarchy = index.hierarchy
        descendants = self._descendant_map()
        mentioned = descendants.get(vertex, set())
        dirty: Set[int] = {vertex} | set(mentioned)

        if hierarchy.in_gk(vertex):
            if vertex in hierarchy.gk:
                hierarchy.gk.remove_vertex(vertex)
        else:
            # Peeled vertex: its augmenting edges may shortcut through it.
            self.approximate = True
        if mentioned:
            for w in list(mentioned):
                label = index._labels.get(w)
                if label is None:
                    continue
                index._labels[w] = [(a, d) for a, d in label if a != vertex]
                self._flush(w)
            self.approximate = True
        descendants.pop(vertex, None)
        index._labels.pop(vertex, None)
        hierarchy.level_of.pop(vertex, None)
        for peeled in hierarchy.levels:
            peeled.pop(vertex, None)
        self.deletes_applied += 1
        index.invalidate_labels(dirty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance under the lazily-maintained index.

        Exactness caveats after updates are documented in the module
        docstring; use :meth:`rebuild` to restore full guarantees.
        """
        return self.index.distance(source, target)

    def distances(self, pairs) -> List[float]:
        """Batch form of :meth:`distance` (the fast engine's batch path)."""
        return self.index.distances(pairs)

    def query(self, source: int, target: int) -> QueryResult:
        return self.index.query(source, target)

    def exact_distance(self, source: int, target: int) -> float:
        """Distance with guaranteed exactness (rebuilds first if stale)."""
        if self.approximate:
            raise StaleIndexError(
                f"index is approximate after {self.deletes_applied} deletions; "
                "call rebuild()"
            )
        return self.index.distance(source, target)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def staleness(self) -> int:
        """Number of updates applied since the last rebuild."""
        return self.inserts_applied + self.deletes_applied

    def rebuild(self) -> None:
        """Re-index the live graph from scratch (the paper's periodic rebuild)."""
        self.index = ISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._descendants = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _descendant_map(self) -> Dict[int, Set[int]]:
        """``ancestor -> vertices whose label mentions it`` (built lazily)."""
        if self._descendants is None:
            self._descendants = _descendant_map(self.index._labels)
        return self._descendants

    def _flush(self, w: int) -> None:
        if self.index._store is not None:
            self.index._store.put(w, self.index._labels[w])


class DynamicDirectedISLabelIndex:
    """A :class:`DirectedISLabelIndex` plus §8.3 update maintenance.

    The directed analogue of :class:`DynamicISLabelIndex`: an inserted
    vertex joins ``G_k``; each of its out-arcs ``x -> v`` teaches ``x``
    the out-ancestors of ``v`` and patches the *in*-labels of ``v`` and of
    every vertex whose in-label mentions ``v`` (they gained a new
    in-ancestor reaching them through ``v``); each in-arc ``u -> x``
    mirrors that onto the out-labels.  Deletions scrub the vertex from
    both label tables and mark the index approximate, exactly like the
    undirected scheme.  Updates report their dirty sets through
    ``invalidate_labels`` so the directed fast engine keeps serving.
    """

    def __init__(self, graph: DiGraph, **build_kwargs) -> None:
        if build_kwargs.get("with_paths"):
            raise QueryError("dynamic maintenance supports distance-only indexes")
        self.graph = graph.copy()
        self._build_kwargs = dict(build_kwargs)
        self.index = DirectedISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._out_descendants: Optional[Dict[int, Set[int]]] = None
        self._in_descendants: Optional[Dict[int, Set[int]]] = None

    @classmethod
    def from_parts(
        cls,
        graph: DiGraph,
        index: DirectedISLabelIndex,
        inserts_applied: int = 0,
        deletes_applied: int = 0,
        approximate: bool = False,
        build_kwargs: Optional[Dict] = None,
    ) -> "DynamicDirectedISLabelIndex":
        """Adopt an existing live digraph + index without rebuilding."""
        self = cls.__new__(cls)
        self.graph = graph
        self._build_kwargs = dict(build_kwargs or {})
        self._build_kwargs.setdefault("engine", index.engine)
        self.index = index
        self.inserts_applied = inserts_applied
        self.deletes_applied = deletes_applied
        self.approximate = approximate
        self._out_descendants = None
        self._in_descendants = None
        return self

    @property
    def engine(self) -> str:
        """Registry name of the serving backend."""
        return self.index.engine

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_vertex(
        self,
        vertex: int,
        out_arcs: Optional[Mapping[int, int]] = None,
        in_arcs: Optional[Mapping[int, int]] = None,
    ) -> None:
        """Insert ``vertex`` with arcs ``vertex -> head`` / ``tail -> vertex``.

        ``out_arcs`` maps arc heads to weights, ``in_arcs`` arc tails; at
        least one arc is required (§8.3 insertions attach to the graph).
        """
        out_arcs = dict(out_arcs or {})
        in_arcs = dict(in_arcs or {})
        if self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} already exists")
        if not out_arcs and not in_arcs:
            raise GraphError("§8.3 insertion requires at least one arc")
        for v in list(out_arcs) + list(in_arcs):
            if not self.graph.has_vertex(v):
                raise GraphError(f"insertion references unknown vertex {v}")

        self.graph.add_vertex(vertex)
        for v, w in out_arcs.items():
            self.graph.add_edge(vertex, v, w)
        for u, w in in_arcs.items():
            self.graph.add_edge(u, vertex, w)

        index = self.index
        hierarchy = index.hierarchy
        out_labels = index._out_labels
        in_labels = index._in_labels
        out_desc = self._out_descendant_map()
        in_desc = self._in_descendant_map()
        dirty: Set[int] = {vertex}

        hierarchy.gk.add_vertex(vertex)
        hierarchy.level_of[vertex] = hierarchy.k
        own_out: Dict[int, int] = {vertex: 0}
        own_in: Dict[int, int] = {vertex: 0}

        for v, weight in out_arcs.items():
            if hierarchy.in_gk(v):
                hierarchy.gk.add_edge(vertex, v, weight)
                own_out[v] = min(own_out.get(v, math.inf), weight)
                continue
            # vertex -> v: v (and everything v reaches, i.e. every vertex
            # whose in-label mentions v) gains the new in-ancestor.
            if _patch_label(in_labels, in_desc, v, vertex, weight):
                dirty.add(v)
            for w, d_vw in _entries_mentioning(in_labels, in_desc, v):
                if _patch_label(in_labels, in_desc, w, vertex, weight + d_vw):
                    dirty.add(w)
            # Extension: the new vertex learns v's out-ancestors.
            for a, d in out_labels[v]:
                candidate = weight + d
                if candidate < own_out.get(a, math.inf):
                    own_out[a] = candidate

        for u, weight in in_arcs.items():
            if hierarchy.in_gk(u):
                hierarchy.gk.add_edge(u, vertex, weight)
                own_in[u] = min(own_in.get(u, math.inf), weight)
                continue
            # u -> vertex: u (and everything reaching u, i.e. every vertex
            # whose out-label mentions u) gains the new out-ancestor.
            if _patch_label(out_labels, out_desc, u, vertex, weight):
                dirty.add(u)
            for w, d_wu in _entries_mentioning(out_labels, out_desc, u):
                if _patch_label(out_labels, out_desc, w, vertex, d_wu + weight):
                    dirty.add(w)
            # Extension: the new vertex learns u's in-ancestors.
            for a, d in in_labels[u]:
                candidate = d + weight
                if candidate < own_in.get(a, math.inf):
                    own_in[a] = candidate

        out_labels[vertex] = sorted(own_out.items())
        in_labels[vertex] = sorted(own_in.items())
        for a in own_out:
            if a != vertex:
                out_desc.setdefault(a, set()).add(vertex)
        for a in own_in:
            if a != vertex:
                in_desc.setdefault(a, set()).add(vertex)
        self.inserts_applied += 1
        index.invalidate_labels(dirty)

    def delete_vertex(self, vertex: int) -> None:
        """Delete ``vertex`` with all incident arcs (§8.3 lazy deletion)."""
        if not self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} does not exist")
        self.graph.remove_vertex(vertex)

        index = self.index
        hierarchy = index.hierarchy
        out_desc = self._out_descendant_map()
        in_desc = self._in_descendant_map()
        mentioned = out_desc.get(vertex, set()) | in_desc.get(vertex, set())
        dirty: Set[int] = {vertex} | mentioned

        if hierarchy.in_gk(vertex):
            if vertex in hierarchy.gk:
                hierarchy.gk.remove_vertex(vertex)
        else:
            self.approximate = True
        if mentioned:
            for w in list(mentioned):
                for table in (index._out_labels, index._in_labels):
                    label = table.get(w)
                    if label is not None:
                        table[w] = [(a, d) for a, d in label if a != vertex]
            self.approximate = True
        out_desc.pop(vertex, None)
        in_desc.pop(vertex, None)
        index._out_labels.pop(vertex, None)
        index._in_labels.pop(vertex, None)
        hierarchy.level_of.pop(vertex, None)
        for peeled in hierarchy.levels:
            peeled.pop(vertex, None)
        self.deletes_applied += 1
        index.invalidate_labels(dirty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Directed distance under the lazily-maintained index."""
        return self.index.distance(source, target)

    def distances(self, pairs) -> List[float]:
        """Batch form of :meth:`distance`."""
        return self.index.distances(pairs)

    def reachable(self, source: int, target: int) -> bool:
        """Directed reachability under the lazily-maintained index."""
        return self.index.reachable(source, target)

    def exact_distance(self, source: int, target: int) -> float:
        """Distance with guaranteed exactness (rebuilds first if stale)."""
        if self.approximate:
            raise StaleIndexError(
                f"index is approximate after {self.deletes_applied} deletions; "
                "call rebuild()"
            )
        return self.index.distance(source, target)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def staleness(self) -> int:
        """Number of updates applied since the last rebuild."""
        return self.inserts_applied + self.deletes_applied

    def rebuild(self) -> None:
        """Re-index the live digraph from scratch."""
        self.index = DirectedISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._out_descendants = None
        self._in_descendants = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _out_descendant_map(self) -> Dict[int, Set[int]]:
        if self._out_descendants is None:
            self._out_descendants = _descendant_map(self.index._out_labels)
        return self._out_descendants

    def _in_descendant_map(self) -> Dict[int, Set[int]]:
        if self._in_descendants is None:
            self._in_descendants = _descendant_map(self.index._in_labels)
        return self._in_descendants
