"""Dynamic update maintenance — §8.3.

The paper's scheme is deliberately *lazy*: inserted vertices join ``G_k``,
their low-level neighbours' labels (and those neighbours' descendants) learn
about them, deleted vertices are scrubbed from the labels that mention them,
and "we can rebuild the index periodically".

Faithfulness notes (see also DESIGN.md):

* **Insertions.**  We implement the paper's descendant propagation and add
  one engineering extension the text implies but does not spell out: the new
  vertex also receives a proper label (the min-merge of its neighbours'
  labels, shifted by the connecting edge weights) so that queries between
  the new vertex and arbitrary old vertices keep working through label
  intersection.  After insertions, answers remain *upper bounds* that are
  exact whenever the interleaving shortest path is covered by the patched
  labels — the common case the paper relies on; :meth:`staleness` counts
  applied updates and :meth:`rebuild` restores exactness guarantees.
* **Deletions.**  Removing a vertex can invalidate augmenting edges that
  route through it, so deletions mark the index ``approximate`` (query
  results may then be under- *or* over-estimates until rebuild), matching
  the paper's rebuild-periodically stance.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.index import ISLabelIndex, QueryResult
from repro.errors import GraphError, QueryError, StaleIndexError
from repro.graph.graph import Graph

__all__ = ["DynamicISLabelIndex"]


class DynamicISLabelIndex:
    """An :class:`ISLabelIndex` plus §8.3 update maintenance.

    Keeps the live graph alongside the index so that updates can be applied
    to both and :meth:`rebuild` can re-index from scratch.
    """

    def __init__(self, graph: Graph, **build_kwargs) -> None:
        if build_kwargs.get("with_paths"):
            raise QueryError("dynamic maintenance supports distance-only indexes")
        if build_kwargs.get("engine", "dict") != "dict":
            # Label patching mutates entry lists in place; the fast engine
            # freezes labels into arrays at build time and would go stale.
            raise QueryError("dynamic maintenance requires engine='dict'")
        self.graph = graph.copy()
        self._build_kwargs = dict(build_kwargs)
        self._build_kwargs["engine"] = "dict"
        self.index = ISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._descendants: Optional[Dict[int, Set[int]]] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_vertex(self, vertex: int, adjacency: Mapping[int, int]) -> None:
        """Insert ``vertex`` with ``{neighbour: weight}`` edges (§8.3).

        The vertex is added to ``G_k``; labels of low-level neighbours and
        their descendants are patched; the new vertex receives a merged
        label of its own.
        """
        if self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} already exists")
        if not adjacency:
            raise GraphError("§8.3 insertion requires a non-empty adjacency list")
        for v in adjacency:
            if not self.graph.has_vertex(v):
                raise GraphError(f"insertion references unknown vertex {v}")

        self.graph.add_vertex(vertex)
        for v, w in adjacency.items():
            self.graph.add_edge(vertex, v, w)

        index = self.index
        hierarchy = index.hierarchy
        descendants = self._descendant_map()

        # The new vertex lives in G_k at level k.
        hierarchy.gk.add_vertex(vertex)
        hierarchy.level_of[vertex] = hierarchy.k
        own_label: Dict[int, int] = {vertex: 0}

        for v, weight in adjacency.items():
            if hierarchy.in_gk(v):
                hierarchy.gk.add_edge(vertex, v, weight)
                own_label[v] = min(own_label.get(v, math.inf), weight)
                continue
            # Patch v itself, then every descendant of v, with the distance
            # through the new edge (v, vertex).
            self._patch_label(v, vertex, weight, descendants)
            for w, d_wv in self._entries_mentioning(v, descendants):
                self._patch_label(w, vertex, d_wv + weight, descendants)
            # Extension: the new vertex learns v's ancestors.
            for w, d in index._labels[v]:
                candidate = weight + d
                if candidate < own_label.get(w, math.inf):
                    own_label[w] = candidate

        index._labels[vertex] = sorted(own_label.items())
        for w in own_label:
            if w != vertex:
                descendants.setdefault(w, set()).add(vertex)
        if index._store is not None:
            index._store.put(vertex, index._labels[vertex])
        self.inserts_applied += 1

    def delete_vertex(self, vertex: int) -> None:
        """Delete ``vertex`` and its incident edges (§8.3 lazy deletion)."""
        if not self.graph.has_vertex(vertex):
            raise GraphError(f"vertex {vertex} does not exist")
        self.graph.remove_vertex(vertex)

        index = self.index
        hierarchy = index.hierarchy
        descendants = self._descendant_map()
        mentioned = descendants.get(vertex, set())

        if hierarchy.in_gk(vertex):
            if vertex in hierarchy.gk:
                hierarchy.gk.remove_vertex(vertex)
        else:
            # Peeled vertex: its augmenting edges may shortcut through it.
            self.approximate = True
        if mentioned:
            for w in list(mentioned):
                label = index._labels.get(w)
                if label is None:
                    continue
                index._labels[w] = [(a, d) for a, d in label if a != vertex]
                if index._store is not None:
                    index._store.put(w, index._labels[w])
            self.approximate = True
        descendants.pop(vertex, None)
        index._labels.pop(vertex, None)
        hierarchy.level_of.pop(vertex, None)
        for peeled in hierarchy.levels:
            peeled.pop(vertex, None)
        self.deletes_applied += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Distance under the lazily-maintained index.

        Exactness caveats after updates are documented in the module
        docstring; use :meth:`rebuild` to restore full guarantees.
        """
        return self.index.distance(source, target)

    def query(self, source: int, target: int) -> QueryResult:
        return self.index.query(source, target)

    def exact_distance(self, source: int, target: int) -> float:
        """Distance with guaranteed exactness (rebuilds first if stale)."""
        if self.approximate:
            raise StaleIndexError(
                f"index is approximate after {self.deletes_applied} deletions; "
                "call rebuild()"
            )
        return self.index.distance(source, target)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @property
    def staleness(self) -> int:
        """Number of updates applied since the last rebuild."""
        return self.inserts_applied + self.deletes_applied

    def rebuild(self) -> None:
        """Re-index the live graph from scratch (the paper's periodic rebuild)."""
        self.index = ISLabelIndex.build(self.graph, **self._build_kwargs)
        self.inserts_applied = 0
        self.deletes_applied = 0
        self.approximate = False
        self._descendants = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _descendant_map(self) -> Dict[int, Set[int]]:
        """``ancestor -> vertices whose label mentions it`` (built lazily)."""
        if self._descendants is None:
            table: Dict[int, Set[int]] = {}
            for v, entries in self.index._labels.items():
                for w, _ in entries:
                    if w != v:
                        table.setdefault(w, set()).add(v)
            self._descendants = table
        return self._descendants

    def _entries_mentioning(
        self, v: int, descendants: Dict[int, Set[int]]
    ) -> Iterable[Tuple[int, int]]:
        """Yield ``(w, d(w, v))`` for every vertex ``w`` whose label has ``v``."""
        for w in descendants.get(v, ()):  # descendants of v
            for anc, d in self.index._labels.get(w, ()):
                if anc == v:
                    yield (w, d)
                    break

    def _patch_label(
        self,
        w: int,
        new_vertex: int,
        distance: int,
        descendants: Dict[int, Set[int]],
    ) -> None:
        """Min-merge entry ``(new_vertex, distance)`` into ``label(w)``."""
        index = self.index
        label = index._labels[w]
        for pos, (anc, d) in enumerate(label):
            if anc == new_vertex:
                if distance < d:
                    label[pos] = (new_vertex, distance)
                    self._flush(w)
                return
            if anc > new_vertex:
                label.insert(pos, (new_vertex, distance))
                descendants.setdefault(new_vertex, set()).add(w)
                self._flush(w)
                return
        label.append((new_vertex, distance))
        descendants.setdefault(new_vertex, set()).add(w)
        self._flush(w)

    def _flush(self, w: int) -> None:
        if self.index._store is not None:
            self.index._store.put(w, self.index._labels[w])
