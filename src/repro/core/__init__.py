"""IS-LABEL core: hierarchy, labeling, index, queries, and extensions."""

from repro.core.analysis import describe_index, hierarchy_report, label_report
from repro.core.approx import ApproximateDistanceOracle
from repro.core.directed import DirectedHierarchy, DirectedISLabelIndex
from repro.core.engines import (
    DIRECTED,
    UNDIRECTED,
    QueryEngine,
    available_engines,
    engine_capabilities,
    engines_with_capability,
    register_engine,
    resolve_engine,
)
from repro.core.fastdirected import DirectedFastEngine
from repro.core.hierarchy import (
    DEFAULT_SIGMA,
    VertexHierarchy,
    build_hierarchy,
    build_hierarchy_with_levels,
)
from repro.core.independent_set import (
    external_independent_set,
    greedy_independent_set,
    is_independent_set,
    random_independent_set,
)
from repro.core.fastlabels import (
    FastEngine,
    LabelArrayPool,
    apsp_ceiling,
    batch_eq1,
    eq1_merge,
    fast_top_down_labels,
)
from repro.core.index import IndexStats, ISLabelIndex, QueryResult
from repro.core.labeling import (
    definition3_label,
    external_top_down_labels,
    top_down_labels,
)
from repro.core.labels import (
    BYTES_PER_ENTRY,
    BYTES_PER_ENTRY_WITH_PRED,
    eq1_distance,
    eq1_distance_argmin,
    intersect_labels,
    sort_label,
    vertex_set,
)
from repro.core.paths import PathReconstructor, is_valid_path, path_length
from repro.core.query import (
    BiDijkstraResult,
    SearchStats,
    csr_label_bidijkstra,
    label_bidijkstra,
)
from repro.core.reduce import external_reduce, reduce_graph, reduce_graph_inplace
from repro.core.serialization import (
    load_directed_index,
    load_dynamic_directed_index,
    load_dynamic_index,
    load_index,
    save_directed_index,
    save_dynamic_directed_index,
    save_dynamic_index,
    save_index,
    save_snapshot,
)
from repro.core.snapshot import (
    DirectedMmapEngine,
    DirectedShardedEngine,
    MmapEngine,
    ShardedEngine,
    open_snapshot,
    write_snapshot,
)
from repro.core.updates import DynamicDirectedISLabelIndex, DynamicISLabelIndex

__all__ = [
    "ISLabelIndex",
    "ApproximateDistanceOracle",
    "describe_index",
    "hierarchy_report",
    "label_report",
    "IndexStats",
    "QueryResult",
    "VertexHierarchy",
    "build_hierarchy",
    "build_hierarchy_with_levels",
    "DEFAULT_SIGMA",
    "greedy_independent_set",
    "random_independent_set",
    "external_independent_set",
    "is_independent_set",
    "reduce_graph",
    "reduce_graph_inplace",
    "external_reduce",
    "definition3_label",
    "top_down_labels",
    "external_top_down_labels",
    "eq1_distance",
    "eq1_distance_argmin",
    "intersect_labels",
    "sort_label",
    "vertex_set",
    "BYTES_PER_ENTRY",
    "BYTES_PER_ENTRY_WITH_PRED",
    "QueryEngine",
    "register_engine",
    "resolve_engine",
    "available_engines",
    "engine_capabilities",
    "engines_with_capability",
    "UNDIRECTED",
    "DIRECTED",
    "FastEngine",
    "DirectedFastEngine",
    "LabelArrayPool",
    "eq1_merge",
    "batch_eq1",
    "apsp_ceiling",
    "fast_top_down_labels",
    "label_bidijkstra",
    "csr_label_bidijkstra",
    "BiDijkstraResult",
    "SearchStats",
    "PathReconstructor",
    "path_length",
    "is_valid_path",
    "DirectedISLabelIndex",
    "DirectedHierarchy",
    "DynamicISLabelIndex",
    "DynamicDirectedISLabelIndex",
    "save_index",
    "load_index",
    "save_directed_index",
    "load_directed_index",
    "save_snapshot",
    "open_snapshot",
    "write_snapshot",
    "MmapEngine",
    "ShardedEngine",
    "DirectedMmapEngine",
    "DirectedShardedEngine",
    "save_dynamic_index",
    "load_dynamic_index",
    "save_dynamic_directed_index",
    "load_dynamic_directed_index",
]
