"""Vertex hierarchy construction — Definitions 1 and 4 (§4.1, §5.1, §6.1.3).

The hierarchy ``(L, G)`` peels an independent set ``L_i`` off every ``G_i``
and replaces ``G_i`` with the distance-preserving ``G_{i+1}``.  The k-level
variant stops at the first graph that failed to shrink by at least
``1 - σ``: "let i be the first level such that |G_i|/|G_{i-1}| > σ; then
k = i" (§5.1).  Vertices surviving in ``G_k`` all receive level ``k``.

:class:`VertexHierarchy` stores everything labeling and querying need:

* per level, the removed vertices with their adjacency at removal time
  (``ADJ(L_i)`` — these are the only edges Definition 3 ever looks at for a
  level-``i`` vertex);
* the final graph ``G_k``;
* level numbers ``ℓ(v)`` for every vertex;
* optionally the §8.1 intermediate-vertex hints for every augmenting edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import IndexBuildError
from repro.core.independent_set import greedy_independent_set, random_independent_set
from repro.core.reduce import EdgeHints, reduce_graph_inplace
from repro.graph.graph import Graph

__all__ = [
    "VertexHierarchy",
    "build_hierarchy",
    "build_hierarchy_with_levels",
    "DEFAULT_SIGMA",
]

Adjacency = List[Tuple[int, int]]

DEFAULT_SIGMA = 0.95


@dataclass
class VertexHierarchy:
    """The k-level vertex hierarchy ``(H_{<k}, G_k)`` of Definition 4.

    Attributes
    ----------
    levels:
        ``levels[i]`` (0-based list index = paper level ``i+1``) maps each
        ``v ∈ L_{i+1}`` to ``adj_{G_{i+1}}(v)`` at removal time.
    gk:
        The top graph ``G_k`` (empty for a full hierarchy).
    level_of:
        ``ℓ(v)`` for every input vertex, 1-based; ``ℓ(v) = k`` for
        ``v ∈ V_{G_k}``.
    sizes:
        ``|G_1|, |G_2|, ..., |G_k|`` — the trace the σ rule evaluated.
    hints:
        §8.1 intermediate-vertex map, present when built with paths enabled.
    build_seconds:
        Wall-clock construction time.
    """

    levels: List[Dict[int, Adjacency]]
    gk: Graph
    level_of: Dict[int, int]
    sizes: List[int]
    sigma: Optional[float]
    hints: Optional[EdgeHints] = None
    build_seconds: float = 0.0

    @property
    def k(self) -> int:
        """The paper's ``k``: level number of every ``G_k`` vertex."""
        return len(self.levels) + 1

    @property
    def num_vertices(self) -> int:
        return len(self.level_of)

    @property
    def is_full(self) -> bool:
        """True when the hierarchy decomposed the whole graph (``G_k`` empty)."""
        return self.gk.num_vertices == 0

    def level(self, v: int) -> int:
        """``ℓ(v)`` (1-based)."""
        try:
            return self.level_of[v]
        except KeyError:
            raise IndexBuildError(f"vertex {v} not covered by the hierarchy") from None

    def removal_adjacency(self, v: int) -> Adjacency:
        """``adj_{G_{ℓ(v)}}(v)`` for a peeled vertex ``v``.

        This is the neighbourhood Definition 3 expands when labeling — for
        ``v ∈ L_i`` every neighbour has a strictly higher level.
        """
        lv = self.level(v)
        if lv >= self.k:
            raise IndexBuildError(f"vertex {v} is in G_k; it was never peeled")
        return self.levels[lv - 1][v]

    def level_vertices(self, i: int) -> List[int]:
        """Vertices of ``L_i`` (1-based ``i < k``), in selection order."""
        if not 1 <= i < self.k:
            raise IndexBuildError(f"no peeled level {i} in a {self.k}-level hierarchy")
        return list(self.levels[i - 1])

    def in_gk(self, v: int) -> bool:
        return self.gk.has_vertex(v)

    def validate_level_numbers(self) -> None:
        """Internal consistency check used by tests and deserialization."""
        for i, peeled in enumerate(self.levels, start=1):
            for v in peeled:
                if self.level_of.get(v) != i:
                    raise IndexBuildError(f"vertex {v} recorded at level "
                                          f"{self.level_of.get(v)}, stored in L_{i}")
        for v in self.gk.vertices():
            if self.level_of.get(v) != self.k:
                raise IndexBuildError(f"G_k vertex {v} has level {self.level_of.get(v)}")


def build_hierarchy(
    graph: Graph,
    sigma: Optional[float] = DEFAULT_SIGMA,
    k: Optional[int] = None,
    full: bool = False,
    is_strategy: str = "min_degree",
    seed: Optional[int] = None,
    with_hints: bool = False,
) -> VertexHierarchy:
    """Construct the (k-level) vertex hierarchy of ``graph``.

    Parameters
    ----------
    graph:
        The input ``G = G_1`` (not mutated; a working copy is peeled).
    sigma:
        The σ stopping threshold of §5.1 (default 0.95, Table 7 uses 0.90).
        Ignored when ``k`` or ``full`` is given.
    k:
        Build exactly ``k - 1`` peeled levels (Table 6's explicit-k sweep).
        The construction may stop earlier if the graph empties.
    full:
        Build the complete hierarchy of Definition 1 (``G_k`` empty, queries
        answered by labels alone) — the §4 index, our full-vs-k ablation.
    is_strategy:
        ``"min_degree"`` (Algorithm 2) or ``"random"`` (ablation).
    seed:
        RNG seed for the random strategy.
    with_hints:
        Record §8.1 intermediate-vertex hints for path reconstruction.
    """
    if sum((k is not None, full, False)) > 1:
        raise IndexBuildError("give at most one of k= and full=")
    if k is not None and k < 2:
        raise IndexBuildError("k must be at least 2 (Definition 4: 1 < k)")
    if sigma is not None and not 0.0 < sigma <= 1.0:
        raise IndexBuildError(f"sigma must be in (0, 1], got {sigma}")
    if is_strategy not in ("min_degree", "random"):
        raise IndexBuildError(f"unknown IS strategy {is_strategy!r}")

    started = time.perf_counter()
    work = graph.copy()
    hints: Optional[EdgeHints] = {} if with_hints else None
    levels: List[Dict[int, Adjacency]] = []
    level_of: Dict[int, int] = {}
    sizes = [work.size]

    while True:
        if work.num_vertices == 0:
            break  # fully decomposed (h reached); G_k is empty
        if k is not None and len(levels) >= k - 1:
            break  # explicit k: exactly k-1 peeled levels
        if not full and k is None and work.num_edges == 0:
            # An edgeless G_i cannot shrink to anything but empty; peeling
            # further only bloats levels without helping queries.
            break

        if is_strategy == "min_degree":
            selected, adj_of = greedy_independent_set(work)
        else:
            selected, adj_of = random_independent_set(
                work, None if seed is None else seed + len(levels)
            )
        if not selected:
            raise IndexBuildError("independent set selection returned nothing")

        level_number = len(levels) + 1
        for v in selected:
            level_of[v] = level_number
        levels.append(adj_of)
        reduce_graph_inplace(work, selected, adj_of, hints)
        sizes.append(work.size)

        if full or k is not None:
            continue
        # §5.1 σ rule: stop at the first G_i that failed to shrink enough.
        if sizes[-1] > sigma * sizes[-2]:
            break

    top_level = len(levels) + 1
    for v in work.vertices():
        level_of[v] = top_level

    hierarchy = VertexHierarchy(
        levels=levels,
        gk=work,
        level_of=level_of,
        sizes=sizes,
        sigma=None if (full or k is not None) else sigma,
        hints=hints,
        build_seconds=time.perf_counter() - started,
    )
    if hierarchy.num_vertices != graph.num_vertices:
        raise IndexBuildError(
            f"hierarchy covers {hierarchy.num_vertices} of "
            f"{graph.num_vertices} vertices"
        )
    return hierarchy


def build_hierarchy_with_levels(
    graph: Graph,
    prescribed: List[List[int]],
    with_hints: bool = False,
) -> VertexHierarchy:
    """Build a hierarchy from explicitly prescribed independent sets.

    ``prescribed[i]`` is ``L_{i+1}``; any vertices not listed stay in
    ``G_k``.  Each prescribed set must be an independent set of the graph
    it is peeled from (Definition 1), which is verified.  Used to replay
    the paper's Figure 1 example (whose illustrative IS choice differs from
    the min-degree greedy) and for targeted tests.
    """
    started = time.perf_counter()
    work = graph.copy()
    hints: Optional[EdgeHints] = {} if with_hints else None
    levels: List[Dict[int, Adjacency]] = []
    level_of: Dict[int, int] = {}
    sizes = [work.size]

    for i, level_set in enumerate(prescribed, start=1):
        adj_of: Dict[int, Adjacency] = {}
        selected = set(level_set)
        for v in level_set:
            if not work.has_vertex(v):
                raise IndexBuildError(f"prescribed vertex {v} not in G_{i}")
            if any(u in selected for u in work.neighbors(v)):
                raise IndexBuildError(
                    f"prescribed L_{i} is not an independent set (vertex {v})"
                )
            adj_of[v] = sorted(work.neighbors(v).items())
            level_of[v] = i
        levels.append(adj_of)
        reduce_graph_inplace(work, level_set, adj_of, hints)
        sizes.append(work.size)

    top = len(levels) + 1
    for v in work.vertices():
        level_of[v] = top
    hierarchy = VertexHierarchy(
        levels=levels,
        gk=work,
        level_of=level_of,
        sizes=sizes,
        sigma=None,
        hints=hints,
        build_seconds=time.perf_counter() - started,
    )
    return hierarchy
