"""Approximate distance queries on top of IS-LABEL (§3.2's remark).

The paper focuses on exact querying but notes that "approximation can be
applied on top of our method (e.g., on the graph G_k defined in Section
5)".  This module realises that remark: instead of running the Type-2
bidirectional Dijkstra over ``G_k``, a small set of *landmarks* inside
``G_k`` is preprocessed with exact ``G_k`` distances, and a query combines

* the exact label distances from each endpoint to its ``G_k`` gateways, and
* the triangle-inequality bound through the best landmark,

yielding an upper bound in ``O(|label| · L)`` time with no search at all.
The Equation-1 bound over the full label intersection is taken too, so the
estimate is never worse than the pure-label answer.

Guarantees: the estimate is always ``>= dist_G(s,t)`` (every bound is a
realizable path) and equals it whenever some shortest path meets a
landmark or avoids ``G_k`` entirely.  Typical observed error on the
benchmark stand-ins is a few percent with 16 landmarks; the
``bench_approx_mode`` benchmark quantifies the speed/error trade-off.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.index import ISLabelIndex
from repro.core.labels import eq1_distance
from repro.errors import IndexBuildError, QueryError

__all__ = ["ApproximateDistanceOracle"]


class ApproximateDistanceOracle:
    """Landmark-based approximate querying over a built IS-LABEL index.

    Parameters
    ----------
    index:
        A built :class:`ISLabelIndex` (any storage mode).
    num_landmarks:
        How many ``G_k`` vertices to preprocess; chosen by descending
        ``G_k`` degree (hub landmarks cover the most shortest paths).
    landmarks:
        Explicit landmark vertices (must lie in ``G_k``); overrides
        ``num_landmarks``.
    """

    def __init__(
        self,
        index: ISLabelIndex,
        num_landmarks: int = 16,
        landmarks: Optional[Sequence[int]] = None,
    ) -> None:
        self.index = index
        gk = index.gk
        if landmarks is not None:
            chosen = list(landmarks)
            for l in chosen:
                if not gk.has_vertex(l):
                    raise IndexBuildError(f"landmark {l} is not in G_k")
        else:
            if num_landmarks < 1:
                raise IndexBuildError("need at least one landmark")
            chosen = sorted(
                gk.vertices(), key=lambda v: (-gk.degree(v), v)
            )[:num_landmarks]
        self.landmarks = chosen
        #: ``_from_landmark[l][v]`` = exact dist_Gk(l, v).
        self._from_landmark: Dict[int, Dict[int, int]] = {
            l: self._gk_sssp(l) for l in chosen
        }

    def _gk_sssp(self, source: int) -> Dict[int, int]:
        gk = self.index.gk
        dist: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = [(0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if v in dist:
                continue
            dist[v] = d
            for u, w in gk.neighbors(v).items():
                if u not in dist:
                    heapq.heappush(heap, (d + w, u))
        return dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance_upper_bound(self, source: int, target: int) -> float:
        """An upper bound on ``dist_G(source, target)`` without searching.

        The bound is the minimum of Equation 1 over the label intersection
        and, per landmark ``l``, (best gateway of ``s`` to ``l``) + (best
        gateway of ``t`` to ``l``), all exact ``G_k`` distances.
        """
        index = self.index
        index._check_vertex(source)
        index._check_vertex(target)
        if source == target:
            return 0

        label_s = index.label(source)
        label_t = index.label(target)
        best = eq1_distance(label_s, label_t)

        seeds_s = index._gk_seeds(label_s)
        seeds_t = index._gk_seeds(label_t)
        if not seeds_s or not seeds_t:
            return best

        for l in self.landmarks:
            table = self._from_landmark[l]
            to_l = min(
                (d + table[v] for v, d in seeds_s if v in table),
                default=math.inf,
            )
            from_l = min(
                (d + table[v] for v, d in seeds_t if v in table),
                default=math.inf,
            )
            if to_l + from_l < best:
                best = to_l + from_l
        return best

    def relative_error(self, source: int, target: int) -> float:
        """``(estimate - exact) / exact`` (0.0 for exact answers)."""
        exact = self.index.distance(source, target)
        estimate = self.distance_upper_bound(source, target)
        if math.isinf(exact):
            if not math.isinf(estimate):
                raise QueryError("estimate finite for a disconnected pair")
            return 0.0
        if exact == 0:
            return 0.0
        return (estimate - exact) / exact

    @property
    def preprocessing_entries(self) -> int:
        """Stored landmark-distance entries (memory footprint proxy)."""
        return sum(len(t) for t in self._from_landmark.values())
