"""Pluggable query-engine layer: the :class:`QueryEngine` protocol and the
engine registry.

PR 1 introduced ``engine="fast"`` as an ad-hoc branch inside
``ISLabelIndex.build``; this module turns the idea into an explicit seam.
A *query engine* is the compute backend behind an index's distance API —
frozen read-only structures that answer Equation 1 and run Algorithm 1's
search stage.  The index facades (:class:`repro.core.index.ISLabelIndex`,
:class:`repro.core.directed.DirectedISLabelIndex`) own storage, I/O
accounting and vertex-coverage checks; the engine owns the hot path.

Engines register themselves by *kind* (``"undirected"`` / ``"directed"``)
and name.  The reference ``"dict"`` implementation is special: it lives
inside the index classes themselves (it shares their mutable structures and
supports paths/dynamic updates), so its registry entry is ``None`` and the
facades fall back to their built-in code path when the registry resolves to
it.  Everything else — today :class:`repro.core.fastlabels.FastEngine` and
:class:`repro.core.fastdirected.DirectedFastEngine`, later sharded or
incrementally-invalidated backends — is constructed through the registered
factory, so new backends plug in without touching ``index.py``,
``serialization.py`` or the CLI.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import IndexBuildError

__all__ = [
    "QueryEngine",
    "EngineFactory",
    "UNDIRECTED",
    "DIRECTED",
    "CAP_LOCAL",
    "CAP_SNAPSHOT",
    "CAP_SHARDED",
    "CAP_REMOTE",
    "CAP_FAULT_TOLERANT",
    "CAP_CACHED",
    "KNOWN_CAPABILITIES",
    "PROTOCOL_METHODS",
    "CACHED_PREFIX",
    "register_engine",
    "resolve_engine",
    "available_engines",
    "engine_capabilities",
    "engines_with_capability",
]

#: Registry kinds — one namespace per graph orientation.
UNDIRECTED = "undirected"
DIRECTED = "directed"

# ----------------------------------------------------------------------
# Capability flags
# ----------------------------------------------------------------------
#: The engine computes answers in-process over structures it holds itself
#: (as opposed to delegating to another process over a transport).
CAP_LOCAL = "local"
#: The engine can adopt a zero-copy serving snapshot
#: (:mod:`repro.core.snapshot`) instead of heap-packing entry lists.
CAP_SNAPSHOT = "snapshot"
#: The engine routes label lookups across vertex-id-range shards, so the
#: shard-aware scheduler (:mod:`repro.serving.scheduler`) has locality to
#: exploit when it buckets queries per shard pair.
CAP_SHARDED = "sharded"
#: The engine answers queries over the network — it needs worker
#: addresses, not labels, and serving topology (not the facade) decides
#: where the index actually lives.
CAP_REMOTE = "remote"
#: The engine survives worker faults: replica-aware retry with backoff,
#: health-checked membership (suspect/dead/recovered), and staleness
#: refresh on ownership rejections — a single worker's death never loses
#: or corrupts a query when shard ownership is replicated.
CAP_FAULT_TOLERANT = "fault_tolerant"
#: The engine fronts its compute with the hot-pair distance cache
#: (:mod:`repro.caching`): batch queries are partitioned into hits and
#: misses and only the misses reach the inner backend.
CAP_CACHED = "cached"

#: Name prefix of the cache decorator: ``cached:fast`` resolves the
#: ``fast`` factory and wraps whatever it builds in a read-through
#: :class:`~repro.caching.engine.CachedEngine`.
CACHED_PREFIX = "cached:"

#: Every capability flag an engine may declare.  Registration validates
#: against this set, and the ``protocol-conformance`` rule of
#: ``repro analyze`` reads it as machine-readable metadata.
KNOWN_CAPABILITIES = frozenset(
    {
        CAP_LOCAL,
        CAP_SNAPSHOT,
        CAP_SHARDED,
        CAP_REMOTE,
        CAP_FAULT_TOLERANT,
        CAP_CACHED,
    }
)

#: The :class:`QueryEngine` protocol as data: method name -> required
#: parameter names (beyond ``self``).  Kept in lockstep with the Protocol
#: below; ``repro analyze`` checks every registered factory class against
#: this spec, including methods inherited across modules.
PROTOCOL_METHODS = {
    "freeze": (),
    "distance": ("source", "target"),
    "distances": ("pairs",),
    "invalidate": ("dirty",),
}


@runtime_checkable
class QueryEngine(Protocol):
    """What an index facade requires of a pluggable compute backend.

    ``freeze`` materializes the read-only query structures (idempotent;
    engines are expected to freeze lazily on first use so index build time
    is unaffected).  ``distance``/``distances`` answer validated queries —
    the facade has already checked vertex coverage and charged any
    simulated I/O.  ``invalidate`` tells the engine the labels (and
    possibly ``G_k``) it snapshotted have changed — the hook §8.3 dynamic
    maintenance uses so dynamic indexes keep serving from a fast engine
    between rebuilds.  Called with no argument it must drop every frozen
    structure so the next query re-freezes from the current labels; called
    with ``dirty`` (the vertices whose labels changed since the last
    freeze/invalidate) an engine *may* instead repair its frozen state
    incrementally, as long as subsequent answers are identical to a full
    re-freeze.  Treating ``dirty`` as "drop everything" is always a
    correct implementation.
    """

    #: Registry name of the backend (e.g. ``"fast"``), surfaced by the
    #: facades' ``engine`` property.
    name: str

    #: True once the query structures are materialized.
    frozen: bool

    def freeze(self) -> "QueryEngine": ...

    def distance(self, source: int, target: int) -> float: ...

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> List[float]: ...

    def invalidate(self, dirty: Optional[Iterable[int]] = None) -> None: ...


#: A registered constructor.  ``None`` marks the built-in dict reference
#: path of the index facades.  Factory signatures are kind-specific:
#: undirected factories take ``(gk, entry_lists, arrays=None)``, directed
#: factories ``(gk, out_lists, in_lists)``.
EngineFactory = Optional[Callable[..., QueryEngine]]

_REGISTRY: Dict[str, Dict[str, EngineFactory]] = {UNDIRECTED: {}, DIRECTED: {}}
_CAPABILITIES: Dict[str, Dict[str, frozenset]] = {UNDIRECTED: {}, DIRECTED: {}}


def register_engine(
    kind: str,
    name: str,
    factory: EngineFactory,
    capabilities: Iterable[str] = (CAP_LOCAL,),
) -> None:
    """Register (or replace) the engine ``name`` under ``kind``.

    ``capabilities`` describes what the backend can do (the ``CAP_*``
    flags) so tooling — CLI help, the serving layer, benchmarks — can
    select engines by trait instead of hard-coding names.  Most engines
    are plain in-process backends, hence the :data:`CAP_LOCAL` default.
    """
    if kind not in _REGISTRY:
        raise IndexBuildError(
            f"unknown engine kind {kind!r} (expected {UNDIRECTED!r} or {DIRECTED!r})"
        )
    caps = frozenset(capabilities)
    unknown = caps - KNOWN_CAPABILITIES
    if unknown:
        raise IndexBuildError(
            f"engine {name!r} declares unknown capability flag(s) "
            f"{sorted(unknown)}; known: {sorted(KNOWN_CAPABILITIES)}"
        )
    _REGISTRY[kind][name] = factory
    _CAPABILITIES[kind][name] = caps


def _wrap_cached(kind: str, base: str) -> EngineFactory:
    """Factory for ``cached:<base>``: resolve the base, decorate the build.

    The import is lazy — :mod:`repro.caching` pulls in numpy-heavy sketch
    code that nothing should pay for unless a cached engine is requested —
    and it also avoids a cycle (caching imports this module's constants).
    """
    base_factory = _REGISTRY[kind][base]
    if base_factory is None:
        raise IndexBuildError(
            f"engine {CACHED_PREFIX}{base!r} is not cacheable: the dict "
            "reference path has no engine object to wrap"
        )
    from repro.caching.engine import cached_factory

    return cached_factory(base_factory, directed=(kind == DIRECTED))


def resolve_engine(kind: str, name: str) -> EngineFactory:
    """Factory registered for ``name``; raises on unknown names.

    A ``None`` return means the reference dict path: the caller keeps its
    built-in structures and attaches no engine object.  Names of the form
    ``cached:<base>`` resolve ``<base>`` and wrap its factory in the
    read-through cache decorator.
    """
    if kind not in _REGISTRY:
        raise IndexBuildError(
            f"unknown engine kind {kind!r} (expected {UNDIRECTED!r} or {DIRECTED!r})"
        )
    table = _REGISTRY[kind]
    if name.startswith(CACHED_PREFIX):
        base = name[len(CACHED_PREFIX) :]
        if base not in table:
            raise IndexBuildError(
                f"unknown {kind} engine {name!r} "
                f"(available: {', '.join(available_engines(kind))})"
            )
        return _wrap_cached(kind, base)
    if name not in table:
        raise IndexBuildError(
            f"unknown {kind} engine {name!r} "
            f"(available: {', '.join(available_engines(kind))})"
        )
    return table[name]


def available_engines(kind: str) -> Tuple[str, ...]:
    """Sorted names resolvable under ``kind`` (for CLI choices and docs).

    Includes a ``cached:<base>`` variant for every wrappable base (every
    registered engine except the dict reference path, which has no engine
    object to decorate).
    """
    if kind not in _REGISTRY:
        raise IndexBuildError(
            f"unknown engine kind {kind!r} (expected {UNDIRECTED!r} or {DIRECTED!r})"
        )
    names = list(_REGISTRY[kind])
    names.extend(
        f"{CACHED_PREFIX}{base}"
        for base, factory in _REGISTRY[kind].items()
        if factory is not None
    )
    return tuple(sorted(names))


def engine_capabilities(kind: str, name: str) -> frozenset:
    """Capability flags declared for engine ``name`` under ``kind``.

    ``cached:<base>`` engines report the base's capabilities plus
    :data:`CAP_CACHED` — the decorator is transparent to everything the
    inner engine can do.
    """
    if kind not in _REGISTRY:
        raise IndexBuildError(
            f"unknown engine kind {kind!r} (expected {UNDIRECTED!r} or {DIRECTED!r})"
        )
    table = _CAPABILITIES[kind]
    if name.startswith(CACHED_PREFIX):
        base = name[len(CACHED_PREFIX) :]
        if base not in table or _REGISTRY[kind][base] is None:
            raise IndexBuildError(
                f"unknown {kind} engine {name!r} "
                f"(available: {', '.join(available_engines(kind))})"
            )
        return table[base] | {CAP_CACHED}
    if name not in table:
        raise IndexBuildError(
            f"unknown {kind} engine {name!r} "
            f"(available: {', '.join(available_engines(kind))})"
        )
    return table[name]


def engines_with_capability(kind: str, capability: str) -> Tuple[str, ...]:
    """Sorted engine names under ``kind`` declaring ``capability``."""
    return tuple(
        name
        for name in available_engines(kind)
        if capability in engine_capabilities(kind, name)
    )


# The dict reference implementation is built into the index facades; its
# registry entry exists so name validation and CLI choices have one source
# of truth.  Fast engines self-register on import (see fastlabels.py /
# fastdirected.py).
register_engine(UNDIRECTED, "dict", None, {CAP_LOCAL})
register_engine(DIRECTED, "dict", None, {CAP_LOCAL})
