"""Shortest-*path* queries — §8.1.

Distance labels answer "how far"; to answer "which way" the paper keeps,
for every augmenting edge, the intermediate vertex whose removal created it,
and for every label entry the neighbour the minimum routed through.  A path
then unfolds recursively:

* a label entry ``(w, d)`` of ``v`` expands into edge ``(v, pred)`` followed
  by ``pred``'s path to ``w`` (``pred = φ`` means the entry *is* an edge);
* an edge of any ``G_i`` expands through its intermediate-vertex hint chain
  until only original edges of ``G`` remain — the hint chain terminates
  because intermediates always have strictly lower level than the edge's
  endpoints.

The expansion cost is ``O(|SP_G(s,t)|)``, as the paper notes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.index import ISLabelIndex
from repro.core.labels import eq1_distance_argmin
from repro.errors import QueryError
from repro.graph.graph import Graph

__all__ = ["PathReconstructor", "path_length", "is_valid_path"]

_MISSING = object()


class PathReconstructor:
    """Reconstructs shortest paths from an index built ``with_paths=True``."""

    def __init__(self, index: ISLabelIndex) -> None:
        if index.hierarchy.hints is None or index._preds is None:
            raise QueryError(
                "path reconstruction needs an index built with with_paths=True"
            )
        self.index = index
        self._hints = index.hierarchy.hints

    def shortest_path(
        self, source: int, target: int
    ) -> Tuple[float, Optional[List[int]]]:
        """Return ``(dist_G(s, t), path)``; path is ``None`` if disconnected."""
        index = self.index
        result, search = index._query_detailed(source, target, keep_parents=True)
        if math.isinf(result.distance):
            return math.inf, None
        if source == target:
            return 0, [source]

        if search is None or search.meet_vertex is None:
            # Either a Type-1/full-hierarchy query, or the bidirectional
            # search never beat the label-intersection bound: the meeting
            # point is the Equation-1 argmin ancestor.
            _, w = eq1_distance_argmin(index.label(source), index.label(target))
            if w == -1:
                raise QueryError(
                    f"query ({source}, {target}) returned {result.distance} "
                    "with an empty label intersection"
                )
            forward = self._label_path(source, w)
            backward = self._label_path(target, w)
        else:
            meet = search.meet_vertex
            forward = self._search_path(source, meet, search.parents_forward)
            backward = self._search_path(target, meet, search.parents_reverse)
        path = forward + backward[::-1][1:]
        return result.distance, path

    # ------------------------------------------------------------------
    # Expansion machinery
    # ------------------------------------------------------------------
    def _search_path(self, endpoint: int, meet: int, parents) -> List[int]:
        """``endpoint -> ... -> meet``: label prefix + expanded G_k edges."""
        chain = [meet]
        cursor = meet
        while parents[cursor] is not None:
            cursor = parents[cursor]
            chain.append(cursor)
        chain.reverse()  # seed vertex first
        path = self._label_path(endpoint, chain[0])
        for a, b in zip(chain, chain[1:]):
            path += self._expand_edge(a, b)[1:]
        return path

    def _label_path(self, v: int, ancestor: int) -> List[int]:
        """The path in ``G`` behind label entry ``(ancestor, d)`` of ``v``."""
        path = [v]
        cursor = v
        while cursor != ancestor:
            pred = self.index._fetch_preds(cursor).get(ancestor, _MISSING)
            if pred is _MISSING:
                raise QueryError(
                    f"label({cursor}) has no entry for ancestor {ancestor}"
                )
            if pred is None:
                path += self._expand_edge(cursor, ancestor)[1:]
                break
            path += self._expand_edge(cursor, pred)[1:]
            cursor = pred
        return path

    def _expand_edge(self, a: int, b: int) -> List[int]:
        """Expand one (possibly augmenting) edge into original-graph hops."""
        mid = self._hints.get((a, b) if a < b else (b, a))
        if mid is None:
            return [a, b]
        left = self._expand_edge(a, mid)
        right = self._expand_edge(mid, b)
        return left + right[1:]


def path_length(graph: Graph, path: List[int]) -> int:
    """Sum of original edge weights along ``path`` (raises on a non-path)."""
    return sum(graph.weight(a, b) for a, b in zip(path, path[1:]))


def is_valid_path(graph: Graph, path: List[int]) -> bool:
    """True iff consecutive path vertices are adjacent in ``graph``."""
    if not path:
        return False
    if any(v not in graph for v in path):
        return False
    return all(graph.has_edge(a, b) for a, b in zip(path, path[1:]))
