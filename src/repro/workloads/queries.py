"""Query workload generation (§7.2).

The paper evaluates with "1000 randomly generated queries" per dataset, and
Table 5 additionally splits queries by endpoint location: Type 1 (both
endpoints in ``G_k``), Type 2 (exactly one), Type 3 (neither).  The helpers
here generate both kinds of workloads deterministically.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.index import ISLabelIndex
from repro.errors import QueryError
from repro.graph.graph import Graph

__all__ = ["random_query_pairs", "typed_query_pairs", "zipf_query_pairs"]

QueryPair = Tuple[int, int]


def random_query_pairs(
    graph: Graph, count: int, seed: Optional[int] = None
) -> List[QueryPair]:
    """``count`` uniform random (s, t) pairs over the graph's vertices."""
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise QueryError("need at least two vertices to build query pairs")
    rng = random.Random(seed)
    return [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]


def zipf_query_pairs(
    graph: Graph,
    count: int,
    seed: Optional[int] = None,
    exponent: float = 1.0,
) -> List[QueryPair]:
    """``count`` pairs with Zipf-skewed endpoint popularity.

    Real query logs are heavily skewed towards popular endpoints; skewed
    workloads are what make label caching effective (the cache ablation
    uses this).  Endpoint ranks follow ``P(rank r) ∝ 1 / r^exponent`` over
    a degree-descending ordering (popular ≈ high degree).
    """
    vertices = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    if len(vertices) < 2:
        raise QueryError("need at least two vertices to build query pairs")
    if exponent <= 0:
        raise QueryError("Zipf exponent must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (r ** exponent) for r in range(1, len(vertices) + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def draw() -> int:
        x = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return vertices[lo]

    return [(draw(), draw()) for _ in range(count)]


def typed_query_pairs(
    index: ISLabelIndex, count: int, query_type: int, seed: Optional[int] = None
) -> List[QueryPair]:
    """``count`` pairs of a fixed Table-5 type against ``index``.

    Type 1: both endpoints in ``G_k``; Type 2: exactly one; Type 3: neither.
    """
    if query_type not in (1, 2, 3):
        raise QueryError(f"query type must be 1, 2 or 3, got {query_type}")
    in_gk = sorted(index.gk.vertices())
    below = sorted(v for v in index.hierarchy.level_of if not index.hierarchy.in_gk(v))
    if query_type == 1 and len(in_gk) < 2:
        raise QueryError("G_k has fewer than two vertices; no Type-1 queries exist")
    if query_type == 2 and (not in_gk or not below):
        raise QueryError("graph lacks vertices on one side for Type-2 queries")
    if query_type == 3 and len(below) < 2:
        raise QueryError("fewer than two below-k vertices; no Type-3 queries exist")

    rng = random.Random(seed)
    pairs: List[QueryPair] = []
    for _ in range(count):
        if query_type == 1:
            pairs.append((rng.choice(in_gk), rng.choice(in_gk)))
        elif query_type == 2:
            s, t = rng.choice(in_gk), rng.choice(below)
            pairs.append((s, t) if rng.random() < 0.5 else (t, s))
        else:
            pairs.append((rng.choice(below), rng.choice(below)))
    return pairs
