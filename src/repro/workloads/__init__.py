"""Workloads: dataset stand-ins and query generators for the evaluation."""

from repro.workloads.datasets import (
    DATASET_NAMES,
    PAPER_TABLE2,
    dataset_builders,
    load_dataset,
)
from repro.workloads.queries import random_query_pairs, typed_query_pairs

__all__ = [
    "DATASET_NAMES",
    "PAPER_TABLE2",
    "dataset_builders",
    "load_dataset",
    "random_query_pairs",
    "typed_query_pairs",
]
