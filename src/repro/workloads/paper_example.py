"""The paper's running example (Figures 1–3, Examples 1–6), as data.

The 9-vertex graph of Figure 1, the exact level assignment
``L1 = {c,f,i}, L2 = {b,d,h}, L3 = {e}, L4 = {a}, L5 = {g}``, and the
published labels of Figure 2(b).  Tests and the walkthrough example replay
the construction against these constants.

Graph reconstruction.  The paper draws the graph but spells out enough in
the text to recover it exactly: ``adj(c) = {b}`` (Example 3), ``(e, f)``
has weight 3 and everything else weight 1, the augmenting edges are
``(e, h, 4)`` in G2 (via f), ``(e, g, 2)`` in G3 (via d), and
``(a, g, 3)`` in G4 (via e), and every label in Figure 2(b) pins down the
removal-time adjacency of its vertex.

**Erratum.** Figure 2(b) prints ``label(f) ∋ (g, 5)``; Definition 3
applied to the published graph and levels gives ``(g, 2)`` — when ``h``
(level 2) is unmarked, it relaxes ``g`` with ``d(f,h) + ω_G2(h,g) =
1 + 1 = 2``.  The ``5`` would arise only if ``h``'s edge to ``g`` were
skipped; both values are valid upper bounds (Lemma 5 needs exactness only
at max-level vertices), so no query answer in the paper changes.
``FIGURE2_LABELS`` carries the corrected value and
``FIGURE2_PUBLISHED_LABEL_F`` the printed one.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph

__all__ = [
    "VERTEX_IDS",
    "VERTEX_NAMES",
    "paper_example_graph",
    "PAPER_LEVELS",
    "FIGURE2_LABELS",
    "FIGURE2_PUBLISHED_LABEL_F",
    "EXAMPLE5_K2_LABELS",
    "EXAMPLE_QUERIES",
    "render_walkthrough",
]

#: ``a..i`` -> 1..9, the paper's vertices as integers.
VERTEX_IDS: Dict[str, int] = {c: i for i, c in enumerate("abcdefghi", start=1)}
VERTEX_NAMES: Dict[int, str] = {v: c for c, v in VERTEX_IDS.items()}

_EDGES: List[Tuple[str, str, int]] = [
    ("a", "b", 1),
    ("a", "e", 1),
    ("b", "c", 1),
    ("b", "e", 1),
    ("d", "e", 1),
    ("d", "g", 1),
    ("e", "f", 3),  # the one non-unit weight (Example 1)
    ("e", "i", 1),
    ("f", "h", 1),
    ("g", "h", 1),
]

#: Figure 1's level assignment, L1 .. L5 (vertex names).
PAPER_LEVELS: List[List[str]] = [
    ["c", "f", "i"],
    ["b", "d", "h"],
    ["e"],
    ["a"],
    ["g"],
]

#: Figure 2(b), with the label(f) erratum corrected (see module docstring).
FIGURE2_LABELS: Dict[str, Dict[str, int]] = {
    "c": {"a": 2, "b": 1, "c": 0, "e": 2, "g": 4},
    "f": {"a": 4, "e": 3, "f": 0, "g": 2, "h": 1},
    "i": {"a": 2, "e": 1, "g": 3, "i": 0},
    "b": {"a": 1, "b": 0, "e": 1, "g": 3},
    "d": {"a": 2, "d": 0, "e": 1, "g": 1},
    "h": {"a": 5, "e": 4, "g": 1, "h": 0},
    "e": {"a": 1, "e": 0, "g": 2},
    "a": {"a": 0, "g": 3},
    "g": {"g": 0},
}

#: The value as printed in the paper (for the erratum test).
FIGURE2_PUBLISHED_LABEL_F: Dict[str, int] = {"a": 4, "e": 3, "f": 0, "g": 5, "h": 1}

#: Example 5: labels of the L1 vertices under the k = 2 hierarchy.
EXAMPLE5_K2_LABELS: Dict[str, Dict[str, int]] = {
    "c": {"b": 1, "c": 0},
    "f": {"e": 3, "f": 0, "h": 1},
    "i": {"e": 1, "i": 0},
}

#: (source, target, distance): Example 4's queries and Example 6's query.
EXAMPLE_QUERIES: List[Tuple[str, str, int]] = [
    ("h", "e", 3),
    ("a", "g", 3),
    ("c", "i", 3),
]


def paper_example_graph() -> Graph:
    """Figure 1's 9-vertex weighted graph (vertex ids per VERTEX_IDS)."""
    return Graph(
        [(VERTEX_IDS[u], VERTEX_IDS[v], w) for u, v, w in _EDGES]
    )


def render_walkthrough() -> str:
    """The Figure 1-3 walkthrough as text (used by the CLI and docs)."""
    from repro.core.hierarchy import build_hierarchy_with_levels
    from repro.core.index import ISLabelIndex
    from repro.core.labeling import top_down_labels

    graph = paper_example_graph()
    levels = [[VERTEX_IDS[c] for c in level] for level in PAPER_LEVELS]
    hierarchy = build_hierarchy_with_levels(graph, levels, with_hints=True)
    labels, _ = top_down_labels(hierarchy)
    index = ISLabelIndex.build(graph, full=True)

    lines = ["Figure 1 — vertex hierarchy:"]
    for i, level in enumerate(PAPER_LEVELS, start=1):
        lines.append(f"  L{i} = {{{', '.join(level)}}}")
    lines.append("Augmenting edges (Example 1):")
    for (a, b), mid in sorted(hierarchy.hints.items()):
        lines.append(
            f"  ({VERTEX_NAMES[a]}, {VERTEX_NAMES[b]}) via {VERTEX_NAMES[mid]}"
        )
    lines.append("Figure 2(b) — labels (label(f) per the documented erratum):")
    for name in FIGURE2_LABELS:
        entries = sorted(
            (VERTEX_NAMES[w], d) for w, d in labels[VERTEX_IDS[name]].items()
        )
        rendered = ", ".join(f"({w},{d})" for w, d in entries)
        lines.append(f"  label({name}) = {{{rendered}}}")
    lines.append("Queries (Examples 4 and 6):")
    for s, t, expected in EXAMPLE_QUERIES:
        got = index.distance(VERTEX_IDS[s], VERTEX_IDS[t])
        lines.append(f"  dist({s}, {t}) = {got}  (paper: {expected})")
    return "\n".join(lines)
