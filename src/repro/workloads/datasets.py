"""Scaled synthetic stand-ins for the paper's five datasets (Table 2).

The originals (BTC, UK Web, as-Skitter, wiki-Talk, web-Google) are
million-to-hundred-million vertex graphs that cannot be shipped or indexed
in pure Python at full scale (repro calibration: "too slow for large-graph
construction without C extensions").  Each builder below produces a seeded
graph, a few thousand to a few ten-thousand vertices large, that preserves
the properties the evaluation actually exercises:

* the |V| ordering of Table 2 (btc > web > wikitalk > skitter > google);
* heavy-tailed degree distributions with hub vertices (wiki-Talk's
  max-degree/|V| ratio is the most extreme, as in the paper);
* the hierarchy-depth ordering of Table 3 (web by far the deepest k,
  wiki-Talk the shallowest) and a ``G_k`` that is a small fraction of the
  graph, which is what makes label+bi-Dijkstra querying beat plain search;
* web's label size exceeding btc's despite fewer vertices (Table 3), and
  web carrying edge weights in {1, 2} (the paper's 2-hop conversion).

**Documented substitution:** the nominal *average degrees* of the three
mid-density datasets (web 16.4, skitter 13.1, google 9.9) are not
reproducible jointly with deep hierarchies at 10^4 scale — hierarchy depth
is a function of how much low-degree periphery survives each peel, and
periphery fraction shrinks with graph scale.  The stand-ins keep the
degree *skew* and reduce the density; EXPERIMENTS.md discusses the impact.

Every builder returns a connected graph (the paper extracts the largest
component of Web too) and is deterministic for a given ``scale``.
``load_dataset`` caches per process; benchmarks use ``scale=1.0`` and tests
use smaller scales.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict

from repro.errors import GraphError
from repro.graph.generators import (
    attach_chains,
    attach_forest,
    attach_hubs,
    ensure_connected,
    powerlaw_configuration,
    random_weights,
)
from repro.graph.graph import Graph

__all__ = ["DATASET_NAMES", "load_dataset", "dataset_builders", "PAPER_TABLE2"]

DATASET_NAMES = ("btc", "web", "skitter", "wikitalk", "google")

#: Table 2 of the paper, for side-by-side reporting.
PAPER_TABLE2 = {
    "btc": {"V": 164_700_000, "E": 361_100_000, "avg_deg": 2.19, "max_deg": 105_618, "disk": "5.6 GB"},
    "web": {"V": 6_900_000, "E": 113_000_000, "avg_deg": 16.40, "max_deg": 31_734, "disk": "1.1 GB"},
    "skitter": {"V": 1_700_000, "E": 22_200_000, "avg_deg": 13.08, "max_deg": 35_455, "disk": "200 MB"},
    "wikitalk": {"V": 2_400_000, "E": 9_300_000, "avg_deg": 3.89, "max_deg": 100_029, "disk": "100 MB"},
    "google": {"V": 900_000, "E": 8_600_000, "avg_deg": 9.87, "max_deg": 6_332, "disk": "80 MB"},
}


def _btc(scale: float) -> Graph:
    """RDF entity graph: very sparse, a few enormous predicate/object hubs."""
    n = max(300, int(36_000 * scale))
    g = powerlaw_configuration(
        n, 2.75, seed=101, min_degree=1, max_degree=max(8, n // 10)
    )
    g = attach_hubs(g, 3, max(10, n // 10), seed=201)
    g = attach_chains(g, max(2, n // 400), 8, seed=301)
    return ensure_connected(g, seed=401)


def _web(scale: float) -> Graph:
    """Hyperlink graph: small power-law core, deep site forests and link
    chains (the deepest hierarchy of the five), weights in {1, 2}."""
    core = max(60, int(1_200 * scale))
    g = powerlaw_configuration(
        core, 2.1, seed=102, min_degree=1, max_degree=max(8, core // 4)
    )
    g = attach_forest(g, int(14_000 * scale), max(3, int(10 * scale)), seed=202)
    g = attach_chains(g, max(2, int(60 * scale)), max(6, int(150 * scale)), seed=302)
    g = ensure_connected(g, seed=402)
    return random_weights(g, 2, seed=502)


def _skitter(scale: float) -> Graph:
    """Internet topology: power-law AS graph with traceroute chain tails."""
    n = max(250, int(6_500 * scale))
    g = powerlaw_configuration(
        n, 2.25, seed=103, min_degree=1, max_degree=max(8, n // 11)
    )
    g = attach_chains(g, max(2, n // 54), 16, seed=203)
    return ensure_connected(g, seed=303)


def _wikitalk(scale: float) -> Graph:
    """User-talk graph: sparse power law with two admin superhubs (the
    most extreme max-degree/|V| ratio, as in the paper)."""
    n = max(250, int(11_000 * scale))
    g = powerlaw_configuration(
        n, 2.35, seed=104, min_degree=1, max_degree=max(8, n // 12)
    )
    g = attach_hubs(g, 2, max(10, n // 3), seed=204)
    return ensure_connected(g, seed=304)


def _google(scale: float) -> Graph:
    """Web-graph sample: moderate power-law core with site forests."""
    n = max(250, int(4_200 * scale))
    g = powerlaw_configuration(
        n, 2.4, seed=105, min_degree=1, max_degree=max(8, n // 10)
    )
    g = attach_forest(g, int(1_800 * scale), max(2, int(120 * scale)), seed=205)
    return ensure_connected(g, seed=305)


_BUILDERS: Dict[str, Callable[[float], Graph]] = {
    "btc": _btc,
    "web": _web,
    "skitter": _skitter,
    "wikitalk": _wikitalk,
    "google": _google,
}


def dataset_builders() -> Dict[str, Callable[[float], Graph]]:
    """The builder registry (mainly for tests and docs)."""
    return dict(_BUILDERS)


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build (or fetch from the per-process cache) one dataset stand-in.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Multiplier on the base vertex budget; 1.0 reproduces the benchmark
        configuration, smaller values give fast test fixtures.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None
    if scale <= 0:
        raise GraphError("scale must be positive")
    return builder(scale)
