"""Baseline algorithms and comparator indexes (§3, §7.3)."""

from repro.baselines.bfs import bfs_distance, bfs_distances
from repro.baselines.dijkstra import (
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_digraph,
    dijkstra_digraph_distance,
    dijkstra_distance,
    dijkstra_path,
)
from repro.baselines.pruned_landmark import PrunedLandmarkIndex
from repro.baselines.vc_index import VCIndex

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "dijkstra_path",
    "bidirectional_dijkstra",
    "dijkstra_digraph",
    "dijkstra_digraph_distance",
    "bfs_distance",
    "bfs_distances",
    "VCIndex",
    "PrunedLandmarkIndex",
]
