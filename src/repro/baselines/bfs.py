"""Breadth-first search distances for unweighted graphs.

The paper's BTC graph is unweighted; BFS is the natural reference there and
a faster oracle than Dijkstra for unit-weight test graphs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict

from repro.errors import QueryError
from repro.graph.graph import Graph

__all__ = ["bfs_distances", "bfs_distance"]


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Hop counts from ``source`` (weights ignored)."""
    if not graph.has_vertex(source):
        raise QueryError(f"vertex {source} not in graph")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def bfs_distance(graph: Graph, source: int, target: int) -> float:
    """P2P hop count with early exit (``inf`` if unreachable)."""
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        raise QueryError("both endpoints must be in the graph")
    if source == target:
        return 0
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in dist:
                if u == target:
                    return dist[v] + 1
                dist[u] = dist[v] + 1
                queue.append(u)
    return math.inf
