"""Pruned landmark labeling — a 2-hop labeling baseline.

§3.1 positions IS-LABEL against the 2-hop family [13]: exact but with
"very costly" construction on large graphs.  We implement the strongest
practical member of that family (Akiba et al.'s pruned landmark labeling,
generalised to positive integer weights via pruned Dijkstra) so benchmarks
can show the trade-off the paper argues: smaller/faster queries than
IS-LABEL on small graphs, but construction cost that grows much faster.

Landmarks are processed in descending-degree order; vertex ``u`` receives
entry ``(landmark, d)`` only when the labels built so far cannot already
certify a distance ``<= d`` — the pruning that makes 2-hop labels feasible
at all.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.graph.graph import Graph

__all__ = ["PrunedLandmarkIndex"]


class PrunedLandmarkIndex:
    """An exact 2-hop labeling built by pruned Dijkstra sweeps."""

    def __init__(
        self,
        labels: Dict[int, List[Tuple[int, int]]],
        rank_of: Dict[int, int],
        build_seconds: float,
    ) -> None:
        self._labels = labels
        self._rank_of = rank_of
        self.build_seconds = build_seconds

    @classmethod
    def build(
        cls, graph: Graph, order: Optional[List[int]] = None
    ) -> "PrunedLandmarkIndex":
        """Build labels; ``order`` overrides the descending-degree ranking."""
        started = time.perf_counter()
        if order is None:
            order = sorted(
                graph.vertices(), key=lambda v: (-graph.degree(v), v)
            )
        rank_of = {v: i for i, v in enumerate(order)}
        labels: Dict[int, List[Tuple[int, int]]] = {v: [] for v in graph.vertices()}

        for rank, landmark in enumerate(order):
            landmark_label = labels[landmark]
            done: set = set()
            heap: List[Tuple[int, int]] = [(0, landmark)]
            while heap:
                d, u = heapq.heappop(heap)
                if u in done:
                    continue
                done.add(u)
                if _query_sorted(landmark_label, labels[u]) <= d:
                    continue  # an earlier landmark already certifies <= d
                labels[u].append((rank, d))
                for w, weight in graph.neighbors(u).items():
                    if w not in done:
                        heapq.heappush(heap, (d + weight, w))
        return cls(labels, rank_of, time.perf_counter() - started)

    def distance(self, source: int, target: int) -> float:
        """Exact distance by 2-hop label intersection."""
        if source not in self._labels or target not in self._labels:
            raise QueryError("both endpoints must be indexed")
        if source == target:
            return 0
        return _query_sorted(self._labels[source], self._labels[target])

    @property
    def label_entries(self) -> int:
        return sum(len(entries) for entries in self._labels.values())

    @property
    def index_bytes(self) -> int:
        return 16 * self.label_entries

    def label(self, v: int) -> List[Tuple[int, int]]:
        return list(self._labels[v])


def _query_sorted(
    label_a: List[Tuple[int, int]], label_b: List[Tuple[int, int]]
) -> float:
    """Min 2-hop distance over two rank-sorted labels (``inf`` if disjoint)."""
    best = math.inf
    i = j = 0
    n, m = len(label_a), len(label_b)
    while i < n and j < m:
        ra, da = label_a[i]
        rb, db = label_b[j]
        if ra == rb:
            if da + db < best:
                best = da + db
            i += 1
            j += 1
        elif ra < rb:
            i += 1
        else:
            j += 1
    return best
