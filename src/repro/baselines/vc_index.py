"""VC-Index — the paper's main comparator (Tables 8 and 9).

Cheng et al. (SIGMOD 2012, [11]) index a graph with a *vertex cover
hierarchy*: each level keeps a vertex cover of the previous graph and
shortcuts the removed vertices (the removed set — the cover's complement —
is an independent set, so the construction mirrors IS-LABEL's reduction;
the two papers share authors and machinery).  Crucially, VC-Index stores
**no per-vertex labels**: a query re-runs a hierarchical single-source
search, which is why the paper finds it orders of magnitude slower per
query while its index is smaller.

This is a re-implementation from the published description (the authors
modified the original C++ source for §7.3); the P2P conversion is the same
one the paper applied: "making the program stop once the distance from s
to t is found" — the top-level Dijkstra exits early and the downward sweep
stops at the target's level.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.hierarchy import VertexHierarchy, build_hierarchy
from repro.errors import QueryError
from repro.extmem.iomodel import CostModel
from repro.graph.graph import Graph

__all__ = ["VCIndex", "VCQueryResult"]

_ROW_HEADER_BYTES = 16
_SLOT_BYTES = 16


@dataclass
class VCQueryResult:
    """One VC-Index P2P query with its simulated disk-cost breakdown.

    Like IS-LABEL, VC-Index is a *disk-resident* index in the paper; a
    query randomly accesses the adjacency rows its searches touch and
    sequentially scans the levels its downward sweep processes.  The I/O
    count times the cost model's latency gives ``time_io_s`` — this is
    what makes VC-Index queries orders of magnitude slower than label
    lookups in Table 8.
    """

    distance: float
    ios: int
    time_io_s: float
    time_cpu_s: float

    @property
    def total_time_s(self) -> float:
        return self.time_io_s + self.time_cpu_s


class VCIndex:
    """A vertex-cover hierarchy distance index, converted for P2P queries."""

    def __init__(
        self,
        hierarchy: VertexHierarchy,
        build_seconds: float,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.build_seconds = build_seconds
        self.cost_model = cost_model or CostModel()
        #: Bytes of each peeled level's ADJ(L_i) file, for scan costing.
        self._level_bytes: List[int] = [
            sum(
                _ROW_HEADER_BYTES + _SLOT_BYTES * len(adjacency)
                for adjacency in peeled.values()
            )
            for peeled in hierarchy.levels
        ]

    @classmethod
    def build(
        cls,
        graph: Graph,
        sigma: float = 0.95,
        k: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
    ) -> "VCIndex":
        """Build the vertex-cover hierarchy.

        Each level's surviving vertex set is a vertex cover of the previous
        graph (its complement being the removed independent set); ``sigma``
        stops the peeling exactly as in §5.1.
        """
        started = time.perf_counter()
        hierarchy = build_hierarchy(graph, sigma=sigma, k=k)
        return cls(hierarchy, time.perf_counter() - started, cost_model)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """P2P distance by hierarchical search (stops once ``target`` found)."""
        return self.query(source, target).distance

    def query(self, source: int, target: int) -> VCQueryResult:
        """P2P query with the simulated disk-cost breakdown.

        Charged I/Os: one random read per removal-adjacency row the upward
        phase expands, one per adjacency row the top-level Dijkstra
        settles, and a sequential scan of every level the downward sweep
        processes (it reads each ``ADJ(L_i)`` file front to back).
        """
        hierarchy = self.hierarchy
        if source not in hierarchy.level_of:
            raise QueryError(f"vertex {source} not covered by this index")
        if target not in hierarchy.level_of:
            raise QueryError(f"vertex {target} not covered by this index")
        if source == target:
            return VCQueryResult(0, 0, 0.0, 0.0)

        started = time.perf_counter()
        ios = 0

        # Phase 1 (up): distances from `source` to its ancestors, by
        # level-ordered relaxation over removal adjacencies.
        up, rows_read = self._upward_distances(source)
        ios += rows_read

        # Phase 2 (top): Dijkstra on G_k seeded with the upward distances.
        # Early exit once `target` is settled, per the P2P conversion.
        target_level = hierarchy.level(target)
        dist, settled = self._top_dijkstra(
            up, target if target_level == hierarchy.k else None
        )
        ios += settled
        if target_level == hierarchy.k:
            elapsed = time.perf_counter() - started
            return VCQueryResult(
                dist.get(target, math.inf),
                ios,
                self.cost_model.time_for(ios),
                elapsed,
            )

        # Phase 3 (down): sweep levels k-1 .. ℓ(target), finalizing each
        # removed vertex from its higher-level removal adjacency.
        for v, d_up in up.items():
            if d_up < dist.get(v, math.inf):
                dist[v] = d_up
        for level in range(hierarchy.k - 1, target_level - 1, -1):
            ios += self.cost_model.scan_cost(self._level_bytes[level - 1])
            for v, adjacency in hierarchy.levels[level - 1].items():
                best = dist.get(v, math.inf)
                for u, w in adjacency:
                    du = dist.get(u)
                    if du is not None and du + w < best:
                        best = du + w
                if not math.isinf(best):
                    dist[v] = best
        elapsed = time.perf_counter() - started
        return VCQueryResult(
            dist.get(target, math.inf),
            ios,
            self.cost_model.time_for(ios),
            elapsed,
        )

    def sssp(self, source: int) -> Dict[int, float]:
        """Full single-source distances — VC-Index's native query."""
        hierarchy = self.hierarchy
        if source not in hierarchy.level_of:
            raise QueryError(f"vertex {source} not covered by this index")
        up, _ = self._upward_distances(source)
        dist, _ = self._top_dijkstra(up, None)
        for v, d_up in up.items():
            if d_up < dist.get(v, math.inf):
                dist[v] = d_up
        for level in range(hierarchy.k - 1, 0, -1):
            for v, adjacency in hierarchy.levels[level - 1].items():
                best = dist.get(v, math.inf)
                for u, w in adjacency:
                    du = dist.get(u)
                    if du is not None and du + w < best:
                        best = du + w
                if not math.isinf(best):
                    dist[v] = best
        return dist

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _upward_distances(self, source: int) -> Tuple[Dict[int, int], int]:
        """Definition-3 style expansion; returns distances and rows read."""
        hierarchy = self.hierarchy
        dist: Dict[int, int] = {source: 0}
        done: set = set()
        rows_read = 0
        heap: List[Tuple[int, int]] = [(hierarchy.level(source), source)]
        while heap:
            level_u, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            if level_u >= hierarchy.k:
                continue
            rows_read += 1
            for w, weight in hierarchy.removal_adjacency(u):
                candidate = dist[u] + weight
                if candidate < dist.get(w, math.inf):
                    dist[w] = candidate
                    heapq.heappush(heap, (hierarchy.level(w), w))
        return dist, rows_read

    def _top_dijkstra(
        self, up: Dict[int, int], stop_at: Optional[int]
    ) -> Tuple[Dict[int, int], int]:
        """Dijkstra on ``G_k``; returns distances and settled-row count."""
        gk = self.hierarchy.gk
        dist: Dict[int, int] = {}
        heap: List[Tuple[int, int]] = [
            (d, v) for v, d in up.items() if gk.has_vertex(v)
        ]
        heapq.heapify(heap)
        settled = 0
        while heap:
            d, v = heapq.heappop(heap)
            if v in dist:
                continue
            dist[v] = d
            settled += 1
            if v == stop_at:
                break
            for u, w in gk.neighbors(v).items():
                if u not in dist:
                    heapq.heappush(heap, (d + w, u))
        return dist, settled

    # ------------------------------------------------------------------
    # Reporting (Table 9 columns)
    # ------------------------------------------------------------------
    @property
    def index_bytes(self) -> int:
        """Size of the stored hierarchy at 16 bytes per adjacency slot."""
        hierarchy = self.hierarchy
        slots = sum(
            len(adjacency)
            for peeled in hierarchy.levels
            for adjacency in peeled.values()
        )
        removed = sum(len(peeled) for peeled in hierarchy.levels)
        gk_bytes = 16 * hierarchy.gk.num_vertices + 32 * hierarchy.gk.num_edges
        return 16 * removed + 16 * slots + gk_bytes

    @property
    def k(self) -> int:
        return self.hierarchy.k
