"""Dijkstra-family reference algorithms.

These are both the correctness oracles for every index in the test suite
and the paper's online baseline: Table 8's **IM-DIJ** is the in-memory
bidirectional Dijkstra search implemented here.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "dijkstra_path",
    "bidirectional_dijkstra",
    "dijkstra_digraph",
    "dijkstra_digraph_distance",
]


def dijkstra(graph: Graph, source: int) -> Dict[int, int]:
    """Single-source shortest distances from ``source``.

    Returns a dict of reachable vertices only (unreachable = absent).
    """
    if not graph.has_vertex(source):
        raise QueryError(f"vertex {source} not in graph")
    dist: Dict[int, int] = {}
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for u, w in graph.neighbors(v).items():
            if u not in dist:
                heapq.heappush(heap, (d + w, u))
    return dist


def dijkstra_distance(graph: Graph, source: int, target: int) -> float:
    """P2P distance with early exit at ``target`` (``inf`` if unreachable)."""
    if not graph.has_vertex(source):
        raise QueryError(f"vertex {source} not in graph")
    if not graph.has_vertex(target):
        raise QueryError(f"vertex {target} not in graph")
    if source == target:
        return 0
    done: set = set()
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in done:
            continue
        if v == target:
            return d
        done.add(v)
        for u, w in graph.neighbors(v).items():
            if u not in done:
                heapq.heappush(heap, (d + w, u))
    return math.inf


def dijkstra_path(
    graph: Graph, source: int, target: int
) -> Tuple[float, Optional[List[int]]]:
    """P2P distance and one shortest path (``(inf, None)`` if unreachable)."""
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        raise QueryError("both endpoints must be in the graph")
    if source == target:
        return 0, [source]
    parent: Dict[int, int] = {}
    done: set = set()
    heap: List[Tuple[int, int, int]] = [(0, source, source)]
    while heap:
        d, v, via = heapq.heappop(heap)
        if v in done:
            continue
        done.add(v)
        parent[v] = via
        if v == target:
            path = [v]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return d, path[::-1]
        for u, w in graph.neighbors(v).items():
            if u not in done:
                heapq.heappush(heap, (d + w, u, v))
    return math.inf, None


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> float:
    """Plain bidirectional Dijkstra — the paper's IM-DIJ baseline (§7.3)."""
    if not graph.has_vertex(source):
        raise QueryError(f"vertex {source} not in graph")
    if not graph.has_vertex(target):
        raise QueryError(f"vertex {target} not in graph")
    if source == target:
        return 0
    dist = ({source: 0}, {target: 0})
    done: Tuple[Dict[int, int], Dict[int, int]] = ({}, {})
    heaps: Tuple[List, List] = ([(0, source)], [(0, target)])
    best = math.inf
    while True:
        mins = [_peek(heaps[i], done[i]) for i in (0, 1)]
        if mins[0] + mins[1] >= best:
            return best
        side = 0 if mins[0] <= mins[1] else 1
        other = 1 - side
        d, v = heapq.heappop(heaps[side])
        if v in done[side]:
            continue
        done[side][v] = d
        if v in done[other] and d + done[other][v] < best:
            best = d + done[other][v]
        for u, w in graph.neighbors(v).items():
            if u in done[side]:
                continue
            candidate = d + w
            if candidate < dist[side].get(u, math.inf):
                dist[side][u] = candidate
                heapq.heappush(heaps[side], (candidate, u))
            other_d = done[other].get(u)
            if other_d is not None and dist[side][u] + other_d < best:
                best = dist[side][u] + other_d


def _peek(heap: List[Tuple[int, int]], done: Dict[int, int]) -> float:
    while heap and heap[0][1] in done:
        heapq.heappop(heap)
    return heap[0][0] if heap else math.inf


def dijkstra_digraph(
    graph: DiGraph, source: int, reverse: bool = False
) -> Dict[int, int]:
    """Directed SSSP over successors (or predecessors with ``reverse``)."""
    if not graph.has_vertex(source):
        raise QueryError(f"vertex {source} not in graph")
    expand = graph.predecessors if reverse else graph.successors
    dist: Dict[int, int] = {}
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        for u, w in expand(v).items():
            if u not in dist:
                heapq.heappush(heap, (d + w, u))
    return dist


def dijkstra_digraph_distance(graph: DiGraph, source: int, target: int) -> float:
    """Directed P2P distance with early exit."""
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        raise QueryError("both endpoints must be in the graph")
    if source == target:
        return 0
    done: set = set()
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v in done:
            continue
        if v == target:
            return d
        done.add(v)
        for u, w in graph.successors(v).items():
            if u not in done:
                heapq.heappush(heap, (d + w, u))
    return math.inf
