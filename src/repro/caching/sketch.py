"""Hub sketches: the landmark-bounded approximate tier.

Grounded in *Sublinear-Space Distance Labeling using Hubs* (PAPERS.md):
a 2-hop cover stays a valid distance oracle under truncation in one
direction — running the Equation 1 merge over only a *subset* of each
label still yields ``min(d(s,w) + d(w,t))`` over the surviving common
ancestors ``w``, which is an **upper bound** on the true distance and is
exact whenever the optimal meeting vertex survived the cut.

The subset kept here is the top-``h`` *highest-hierarchy-order* entries
(level descending, distance ascending as the tie-break): IS-LABEL's
upper levels are precisely its landmark set — the vertices most shortest
paths route through — so they are the entries most likely to carry the
optimal ``w``.  That gives a merge whose cost is ``O(h)`` per endpoint
instead of ``O(|label|)``, with a bounded, one-sided error contract:

* ``bound(s, t)`` **never under-reports** — it returns the true distance
  or an over-estimate, never less;
* the bound is **provably exact** (per §5.2's Type-1 argument) when both
  sketches are lossless (the full label fit in ``h`` entries) and at
  least one endpoint's full label carries no ``G_k`` gateway — then the
  sketch merge *is* the full Equation 1 merge and no ``G_k`` search
  stage could improve it.  The ``exact_known`` counter tracks this; the
  *observed* exactness fraction (how often the bound happened to equal
  the truth anyway) is measured empirically by ``bench_hotcache``.

Sketches are materialized from the label entry lists in one vectorized
pass — concatenate every label, look levels up with one
``searchsorted``, one ``lexsort``, one ranked truncation — not
per-vertex Python sorts.  The facade caches a lazily built instance and
drops it on :meth:`~repro.core.index.ISLabelIndex.invalidate_labels`,
so §8.3 updates can never serve a sketch built from stale labels.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import QueryError

__all__ = ["DEFAULT_SKETCH_H", "SketchTable", "HubSketch", "DirectedHubSketch"]

#: Default entries kept per vertex.  Labels average well above this on
#: the paper's graphs, so ``h=8`` gives a real merge-cost reduction
#: while keeping the top of the hierarchy — where the paper's Table 4
#: shows most meeting vertices live — intact.
DEFAULT_SKETCH_H = 8


class SketchTable:
    """Truncated labels for one direction: ``v -> {ancestor: dist}``.

    Built by :meth:`build` in one vectorized pass.  Alongside the kept
    entries it records, per vertex, the *full* label length (the merge
    cost the sketch avoided), whether the sketch is ``lossless``
    (``|label| <= h``) and whether the full label carries ``no_seeds``
    (no ``G_k``-resident ancestor — the §5.2 Type-1 exactness side).
    """

    __slots__ = ("h", "entries", "full_len", "lossless", "no_seeds")

    def __init__(self, h: int) -> None:
        self.h = h
        self.entries: Dict[int, Dict[int, float]] = {}
        self.full_len: Dict[int, int] = {}
        self.lossless: Dict[int, bool] = {}
        self.no_seeds: Dict[int, bool] = {}

    @classmethod
    def build(
        cls,
        label_of: Callable[[int], Iterable[Tuple[int, float]]],
        vertices: Iterable[int],
        level_of: Dict[int, int],
        gk_ids: Iterable[int],
        h: int = DEFAULT_SKETCH_H,
    ) -> "SketchTable":
        """Materialize the top-``h`` highest-order entries of every label.

        The ranking/truncation runs as one batch over the concatenated
        labels: levels come from a single ``searchsorted`` against the
        sorted hierarchy keys, the (vertex, level desc, dist asc) order
        from one ``lexsort``, and the per-vertex top-``h`` from a ranked
        mask — no per-vertex sort.
        """
        if h < 1:
            raise QueryError(f"hub sketch needs h >= 1, got {h}")
        table = cls(h)
        order: List[int] = []
        counts: List[int] = []
        flat_anc: List[int] = []
        flat_d: List[float] = []
        for v in vertices:
            entries = list(label_of(v))
            order.append(v)
            counts.append(len(entries))
            for anc, d in entries:
                flat_anc.append(anc)
                flat_d.append(d)
        if not order:
            return table

        counts_np = np.asarray(counts, dtype=np.int64)
        anc = np.asarray(flat_anc, dtype=np.int64)
        dist = np.asarray(flat_d, dtype=np.float64)
        vpos = np.repeat(np.arange(len(order), dtype=np.int64), counts_np)

        # Hierarchy level of every ancestor, one searchsorted over the
        # sorted level_of keys (every label ancestor is a hierarchy vertex).
        lv_keys = np.fromiter(level_of.keys(), dtype=np.int64, count=len(level_of))
        lv_vals = np.fromiter(level_of.values(), dtype=np.int64, count=len(level_of))
        lv_order = np.argsort(lv_keys)
        lv_keys = lv_keys[lv_order]
        lv_vals = lv_vals[lv_order]
        pos = np.searchsorted(lv_keys, anc)
        pos[pos == len(lv_keys)] = 0
        level = lv_vals[pos]
        level = np.where(lv_keys[pos] == anc, level, -1)

        # G_k membership of every ancestor (for the no_seeds flag).
        gk_sorted = np.asarray(sorted(gk_ids), dtype=np.int64)
        gpos = np.searchsorted(gk_sorted, anc)
        gpos[gpos == len(gk_sorted)] = 0
        in_gk = (
            gk_sorted[gpos] == anc
            if len(gk_sorted)
            else np.zeros(len(anc), dtype=bool)
        )

        # One stable sort: vertex groups stay contiguous, entries inside a
        # group ordered by level descending, then distance ascending.
        perm = np.lexsort((dist, -level, vpos))
        starts = np.concatenate(([0], np.cumsum(counts_np)))
        rank = np.arange(len(anc), dtype=np.int64) - np.repeat(
            starts[:-1], counts_np
        )
        kept = perm[rank < h]

        k_vpos = vpos[kept]
        k_anc = anc[kept]
        k_dist = dist[kept]
        seeds_per_vertex = np.bincount(
            vpos[in_gk], minlength=len(order)
        ) if len(anc) else np.zeros(len(order), dtype=np.int64)

        entries = table.entries
        for v in order:
            entries[v] = {}
        for i in range(len(k_vpos)):
            entries[order[k_vpos[i]]][int(k_anc[i])] = float(k_dist[i])
        for i, v in enumerate(order):
            n = int(counts_np[i])
            table.full_len[v] = n
            table.lossless[v] = n <= h
            table.no_seeds[v] = int(seeds_per_vertex[i]) == 0
        return table

    def nbytes(self) -> int:
        """Nominal sketch footprint (16 bytes per kept entry)."""
        return 16 * sum(len(e) for e in self.entries.values())


class _SketchBase:
    """Shared query/counter machinery of the two orientations."""

    __slots__ = ("queries", "exact_known", "full_entries", "sketch_entries")

    def __init__(self) -> None:
        self.queries = 0
        self.exact_known = 0
        # Merge-cost ledger: entries a full Eq. 1 merge would have
        # scanned vs. what the sketch merge actually scanned.
        self.full_entries = 0
        self.sketch_entries = 0

    def _merge(
        self, fwd: SketchTable, bwd: SketchTable, s: int, t: int
    ) -> Tuple[float, bool]:
        if s not in fwd.entries:
            raise QueryError(f"vertex {s} is not covered by this sketch")
        if t not in bwd.entries:
            raise QueryError(f"vertex {t} is not covered by this sketch")
        self.queries += 1
        if s == t:
            self.exact_known += 1
            return 0.0, True
        sk_s = fwd.entries[s]
        sk_t = bwd.entries[t]
        self.full_entries += fwd.full_len[s] + bwd.full_len[t]
        self.sketch_entries += len(sk_s) + len(sk_t)
        if len(sk_t) < len(sk_s):
            sk_s, sk_t = sk_t, sk_s
        best = float("inf")
        for anc, ds in sk_s.items():
            dt = sk_t.get(anc)
            if dt is not None and ds + dt < best:
                best = ds + dt
        exact = (
            fwd.lossless[s]
            and bwd.lossless[t]
            and (fwd.no_seeds[s] or bwd.no_seeds[t])
        )
        if exact:
            self.exact_known += 1
        return best, exact

    def stats(self) -> Dict[str, float]:
        return {
            "queries": self.queries,
            "exact_known": self.exact_known,
            "exact_known_fraction": (
                self.exact_known / self.queries if self.queries else 0.0
            ),
            "full_entries_merged": self.full_entries,
            "sketch_entries_merged": self.sketch_entries,
            "merge_cost_reduction": (
                self.full_entries / self.sketch_entries
                if self.sketch_entries
                else 1.0
            ),
        }


class HubSketch(_SketchBase):
    """Undirected approximate tier: one table serves both endpoints."""

    __slots__ = ("table",)

    def __init__(self, table: SketchTable) -> None:
        super().__init__()
        self.table = table

    @classmethod
    def from_index(cls, index, h: int = DEFAULT_SKETCH_H) -> "HubSketch":
        """Build from an undirected facade (its public ``label`` view)."""
        hierarchy = index.hierarchy
        return cls(
            SketchTable.build(
                index.label,
                sorted(hierarchy.level_of),
                hierarchy.level_of,
                hierarchy.gk.vertices(),
                h=h,
            )
        )

    def bound(self, s: int, t: int) -> Tuple[float, bool]:
        """``(upper_bound, provably_exact)`` for one pair."""
        return self._merge(self.table, self.table, s, t)

    def bounds(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        return [self._merge(self.table, self.table, s, t)[0] for s, t in pairs]

    def nbytes(self) -> int:
        return self.table.nbytes()


class DirectedHubSketch(_SketchBase):
    """Directed approximate tier: out-sketch(source) meets in-sketch(target)."""

    __slots__ = ("out_table", "in_table")

    def __init__(self, out_table: SketchTable, in_table: SketchTable) -> None:
        super().__init__()
        self.out_table = out_table
        self.in_table = in_table

    @classmethod
    def from_index(cls, index, h: int = DEFAULT_SKETCH_H) -> "DirectedHubSketch":
        """Build from a directed facade (its ``out_label``/``in_label``)."""
        hierarchy = index.hierarchy
        vertices = sorted(hierarchy.level_of)
        gk_vertices = list(hierarchy.gk.vertices())
        return cls(
            SketchTable.build(
                index.out_label, vertices, hierarchy.level_of, gk_vertices, h=h
            ),
            SketchTable.build(
                index.in_label, vertices, hierarchy.level_of, gk_vertices, h=h
            ),
        )

    def bound(self, s: int, t: int) -> Tuple[float, bool]:
        """``(upper_bound, provably_exact)`` for one ordered pair."""
        return self._merge(self.out_table, self.in_table, s, t)

    def bounds(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        return [
            self._merge(self.out_table, self.in_table, s, t)[0] for s, t in pairs
        ]

    def nbytes(self) -> int:
        return self.out_table.nbytes() + self.in_table.nbytes()
