"""``cached:*`` — the read-through engine decorator.

:class:`CachedEngine` wraps any registered backend (``cached:fast``,
``cached:remote``, ``cached:mmap``, …) behind the full
:class:`~repro.core.engines.QueryEngine` protocol: ``distances()``
partitions each batch into hits and misses, dispatches only the misses
to the inner engine (deduplicated; input order preserved on
reassembly), and ``invalidate()`` keeps the cache exact across §8.3
dynamic updates.

Invalidation is the part that has to be *provably* conservative.  A
cached answer is a function of ``label(s)``, ``label(t)`` and the
``G_k`` search graph, but §8.3 maintenance only reports *label* dirt —
``insert_vertex`` can add ``G_k`` edges without dirtying the old
endpoints.  So targeted per-pair eviction (drop every cached pair
touching a dirty vertex) is sound **iff** the ``G_k`` delta since the
last snapshot cannot create a new path between pre-existing vertices.
The decorator tracks a ``G_k`` token (vertex-id set, edge count, and a
weighted edge signature — a 64-bit hash sum over ``(u, v, w)`` arcs, so
an augmenting edge whose *weight* is recomputed without changing the
edge count still trips the ledger) and admits exactly one kind of
structural change without flushing: *grafted pendants* — newly added
vertices whose total degree is ≤ 1 at invalidation time (and their
later removal, in graft order).  Every edge such a vertex ever carries
attaches to the grafted forest, so no path between two old vertices can
route through it; distances between undirtied pairs are untouched.  Any
other delta — an edge between old vertices, a core vertex deleted, a
reweighted edge, an unexplained signature — falls back to a full flush.
Wrapping an engine with no ``G_k`` in hand (``cached:remote``) flushes
on every dirty invalidation for the same reason: correctness first,
hit rate second.

The approximate tier composes through :meth:`CachedEngine.distances_via`:
the facade routes sketch upper bounds through the same cache under the
``"approx"`` namespace, so hot approximate pairs are cached too but are
never visible to an exact lookup.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro.caching.cache import APPROX, EXACT, DistanceCache
from repro.envvars import read_env_float, read_env_int
from repro.errors import IndexBuildError

__all__ = [
    "CachedEngine",
    "cached_factory",
    "DEFAULT_CACHE_ENTRIES",
    "ENV_CACHE_ENTRIES",
    "ENV_CACHE_TTL_S",
    "ENV_CACHE_ENABLE",
    "cache_entries_from_env",
    "cache_ttl_from_env",
]

DEFAULT_CACHE_ENTRIES = 65536

#: The cache knobs, resolved flag > environment > default at every
#: integration point (CLI ``serve``, the ``cached:*`` factories).
ENV_CACHE_ENTRIES = "REPRO_CACHE_ENTRIES"
ENV_CACHE_TTL_S = "REPRO_CACHE_TTL_S"
ENV_CACHE_ENABLE = "REPRO_CACHE_ENABLE"


def cache_entries_from_env() -> Optional[int]:
    """``REPRO_CACHE_ENTRIES`` validated; :class:`IndexBuildError` on junk."""
    try:
        return read_env_int(
            ENV_CACHE_ENTRIES, what="cache entry budget", minimum=1
        )
    except ValueError as exc:
        raise IndexBuildError(str(exc)) from exc


def cache_ttl_from_env() -> Optional[float]:
    """``REPRO_CACHE_TTL_S`` validated; ``0`` means "no TTL"."""
    try:
        value = read_env_float(ENV_CACHE_TTL_S, what="cache TTL in seconds")
    except ValueError as exc:
        raise IndexBuildError(str(exc)) from exc
    return None if value == 0 else value


class CachedEngine:
    """Read-through :class:`DistanceCache` in front of an inner engine."""

    def __init__(
        self,
        inner,
        gk=None,
        directed: bool = False,
        max_entries: Optional[int] = None,
        ttl_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if inner is None:
            raise IndexBuildError(
                "the cached decorator needs a real inner engine; "
                "the dict reference path has nothing to wrap"
            )
        self._inner = inner
        self._gk = gk
        self._directed = bool(directed)
        self.name = f"cached:{inner.name}"
        self.cache = DistanceCache(
            max_entries=(
                max_entries if max_entries is not None else DEFAULT_CACHE_ENTRIES
            ),
            ttl_s=ttl_s,
            max_bytes=max_bytes,
            directed=directed,
            clock=clock,
        )
        # G_k token for sound targeted invalidation (module docstring).
        self._known_vs: Optional[set] = None
        self._known_edges: int = 0
        self._known_sig: int = 0
        # grafted vertex -> (edge count, signature) of the arcs
        # attributed to it at admission
        self._grafted: dict = {}
        self._snapshot_gk()

    # ------------------------------------------------------------------
    # QueryEngine protocol
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return bool(getattr(self._inner, "frozen", True))

    def freeze(self) -> "CachedEngine":
        self._inner.freeze()
        self._snapshot_gk()
        return self

    def distance(self, source: int, target: int) -> float:
        hit, value = self.cache.lookup(source, target)
        if hit:
            return value
        value = self._inner.distance(source, target)
        self.cache.put(source, target, value)
        return value

    def distances(self, pairs: Iterable[Tuple[int, int]]) -> List[float]:
        return self.cache.read_through(
            list(pairs), self._inner.distances, EXACT
        )

    def invalidate(self, dirty: Optional[Iterable[int]] = None) -> None:
        """Forward to the inner engine, then evict exactly what went stale."""
        dirty = None if dirty is None else {int(v) for v in dirty}
        self._inner.invalidate(dirty)
        if dirty is None or not self._gk_delta_is_safe():
            self.cache.flush()
        else:
            self.cache.invalidate(dirty)
        self._snapshot_gk()

    # ------------------------------------------------------------------
    # Composition seams
    # ------------------------------------------------------------------
    def distances_via(
        self,
        pairs: Iterable[Tuple[int, int]],
        compute: Callable[[List[Tuple[int, int]]], List[float]],
        namespace: str = APPROX,
    ) -> List[float]:
        """Read-through with a caller-supplied compute, e.g. the sketch
        tier — answers land in ``namespace`` and never leak into exact
        lookups."""
        return self.cache.read_through(list(pairs), compute, namespace)

    @property
    def inner(self):
        """The wrapped engine (benchmarks compare against it directly)."""
        return self._inner

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    @property
    def scheduler(self):
        """Inner engine's scheduler, when it has one (``cached:remote``)."""
        return getattr(self._inner, "scheduler", None)

    @property
    def failovers(self):
        return getattr(self._inner, "failovers", 0)

    # ------------------------------------------------------------------
    # G_k token
    # ------------------------------------------------------------------
    _SIG_MASK = (1 << 64) - 1

    def _gk_edge_count(self, v: int) -> int:
        gk = self._gk
        if self._directed:
            return len(gk.successors(v)) + len(gk.predecessors(v))
        return gk.degree(v)

    def _arc_sig(self, u: int, v: int, w: int) -> int:
        if not self._directed and u > v:
            u, v = v, u
        return hash((u, v, w)) & self._SIG_MASK

    def _gk_sig(self) -> int:
        """64-bit hash sum over all weighted ``G_k`` arcs.  Unlike the raw
        edge count this also moves when an augmenting edge is *reweighted*
        in place, and two opposing deltas cancel only with ~2^-64 odds."""
        total = 0
        for u, v, w in self._gk.edges():
            total = (total + self._arc_sig(u, v, w)) & self._SIG_MASK
        return total

    def _graft_arcs(self, v: int):
        """The weighted arcs a candidate graft carries right now."""
        gk = self._gk
        if self._directed:
            return [(v, w, wt) for w, wt in gk.successors(v).items()] + [
                (w, v, wt) for w, wt in gk.predecessors(v).items()
            ]
        return [(v, w, wt) for w, wt in gk.neighbors(v).items()]

    def _snapshot_gk(self) -> None:
        if self._gk is None:
            self._known_vs = None
            return
        self._known_vs = set(self._gk.vertices())
        self._known_edges = self._gk.num_edges
        self._known_sig = self._gk_sig()
        self._grafted = {
            v: rec for v, rec in self._grafted.items() if v in self._known_vs
        }

    def _gk_delta_is_safe(self) -> bool:
        """True iff the ``G_k`` change since the last snapshot cannot have
        shortened any path between pre-existing vertices (see the module
        docstring for the pendant-graft argument)."""
        if self._known_vs is None:
            return False  # no G_k in hand (e.g. remote): cannot verify
        gk = self._gk
        current = set(gk.vertices())
        added = current - self._known_vs
        removed = self._known_vs - current
        # Removals are safe only for vertices we admitted as grafts.
        if any(v not in self._grafted for v in removed):
            return False
        # Additions are safe only as pendants (total degree <= 1 now).
        # Each new arc is attributed to exactly one graft (the first new
        # endpoint that claims it); an arc landing on an *older* graft
        # stays attributed to the new vertex, so removing the older graft
        # out of order under-explains the signature and forces a flush —
        # conservative, never stale.
        edges_added = 0
        added_sig = 0
        seen_arcs = set()
        new_records = {}
        for v in added:
            if self._gk_edge_count(v) > 1:
                return False
            count = 0
            sig = 0
            for a, b, wt in self._graft_arcs(v):
                key = (a, b) if self._directed else (min(a, b), max(a, b))
                if key in seen_arcs:
                    continue  # arc between two new pendants: claimed once
                seen_arcs.add(key)
                count += 1
                sig = (sig + self._arc_sig(a, b, wt)) & self._SIG_MASK
            new_records[v] = (count, sig)
            edges_added += count
            added_sig = (added_sig + sig) & self._SIG_MASK
        # Every edge *and weight* delta must be explained by the grafts
        # themselves — an edge between old vertices, or an old edge
        # reweighted by §8.3 augmenting-edge repair, fails this ledger.
        removed_edges = sum(self._grafted[v][0] for v in removed)
        removed_sig = 0
        for v in removed:
            removed_sig = (removed_sig + self._grafted[v][1]) & self._SIG_MASK
        if gk.num_edges != self._known_edges + edges_added - removed_edges:
            return False
        expected_sig = (self._known_sig + added_sig - removed_sig) & self._SIG_MASK
        if self._gk_sig() != expected_sig:
            return False
        for v in removed:
            del self._grafted[v]
        self._grafted.update(new_records)
        return True


def cached_factory(base_factory, directed: bool):
    """Wrap a registered factory so ``cached:<name>`` builds the inner
    engine with the original arguments and decorates it.

    The ``G_k`` handed to the inner factory (the first positional / the
    ``gk`` keyword, when present) is also handed to the decorator — it
    is the live object §8.3 maintenance mutates, which is exactly what
    the invalidation token must watch.  Budget knobs come from the
    environment (``REPRO_CACHE_ENTRIES`` / ``REPRO_CACHE_TTL_S``).
    """

    def factory(*args, **kwargs):
        inner = base_factory(*args, **kwargs)
        gk = args[0] if args else kwargs.get("gk")
        return CachedEngine(
            inner,
            gk=gk,
            directed=directed,
            max_entries=cache_entries_from_env(),
            ttl_s=cache_ttl_from_env(),
        )

    return factory
