"""The hot-pair distance cache: a seeded, TTL'd, size-budgeted LRU.

Real point-to-point traffic is Zipf-skewed — a tiny set of ``(s, t)``
pairs dominates — yet every query otherwise re-runs the Equation 1
label merge (and possibly the CSR search stage) even when the identical
pair was answered microseconds ago.  :class:`DistanceCache` is the
read-through store in front of any engine: the cached-engine decorator
(:mod:`repro.caching.engine`), the server-side tier inside
:class:`repro.serving.server.ShardServer` and the client-side tier of
``engine="cached:remote"`` all share this one implementation.

Keys canonicalize the pair per orientation: undirected caches normalize
``(s, t)`` to ``(min, max)`` (``dist(s, t) == dist(t, s)``, so both
orders hit one entry), directed caches keep the order.  Entries carry a
namespace so the approximate tier's upper bounds
(:mod:`repro.caching.sketch`) can be cached **without ever being served
to an exact query** — ``"exact"`` and ``"approx"`` answers never mix.

Eviction has three independent causes, counted separately so the stats
distinguish a small cache from a stale one:

* **capacity** — the LRU tail falls off when the entry or byte budget
  is exceeded (``evictions``);
* **TTL** — an entry older than ``ttl_s`` is discarded at lookup time
  (``expired``; the staleness counter);
* **invalidation** — §8.3 dynamic updates report dirty vertices and
  every cached pair touching one is evicted exactly
  (``invalidated``), with a conservative full flush past a dirtiness
  threshold (``flushes``) — see :meth:`invalidate`.

All operations are guarded by one internal lock, so a cache shared by a
server's admission-executor threads needs no external coordination.
The clock is injectable (``clock=...``) so TTL behavior is unit-testable
with a fake clock instead of ``sleep``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import QueryError

__all__ = ["DistanceCache", "EXACT", "APPROX", "ENTRY_BYTES"]

#: The two key namespaces.  Exact lookups never read ``APPROX`` entries.
EXACT = "exact"
APPROX = "approx"

#: Nominal accounting size of one cache entry: the key tuple (namespace
#: ref + two boxed int64s), the float value, the timestamp and the two
#: hash-table slots (LRU map + per-vertex index).  A deliberate model
#: constant — the byte budget is a planning knob, not an allocator audit.
ENTRY_BYTES = 160

#: Fraction of distinct cached vertices that may be dirtied before
#: :meth:`DistanceCache.invalidate` gives up on exact eviction and
#: flushes everything (walking most of the per-vertex index would cost
#: more than re-filling the survivors).
FLUSH_THRESHOLD = 0.5


class DistanceCache:
    """LRU of ``(s, t) -> distance`` with TTL, byte budget and namespaces.

    ``max_entries`` and ``max_bytes`` (``ENTRY_BYTES`` per entry) are
    independent ceilings; whichever is hit first evicts the LRU tail.
    ``ttl_s=None`` disables expiry.  ``directed=False`` canonicalizes
    undirected pairs to ``(min, max)``.  ``seed`` pre-warms the cache
    (hot pairs known ahead of time — e.g. replayed from yesterday's
    traffic — never pay a cold miss).
    """

    def __init__(
        self,
        max_entries: int = 65536,
        ttl_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        directed: bool = False,
        clock: Callable[[], float] = time.monotonic,
        seed: Optional[Iterable[Tuple[int, int, float]]] = None,
    ) -> None:
        if max_entries < 1:
            raise QueryError(
                f"DistanceCache needs max_entries >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < ENTRY_BYTES:
            raise QueryError(
                f"DistanceCache max_bytes must be >= {ENTRY_BYTES} "
                f"(one entry), got {max_bytes}"
            )
        if ttl_s is not None and ttl_s <= 0:
            raise QueryError(f"DistanceCache ttl_s must be positive, got {ttl_s}")
        self.max_entries = int(max_entries)
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.directed = bool(directed)
        self._clock = clock
        # key -> (value, stamp); insertion order is recency order.
        self._entries: "OrderedDict[Tuple[str, int, int], Tuple[float, float]]" = (
            OrderedDict()
        )
        # vertex -> set of keys touching it, for exact dirty eviction.
        self._by_vertex: Dict[int, set] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired = 0
        self.invalidated = 0
        self.flushes = 0
        self.seeded = 0
        if seed is not None:
            self.seed(seed)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_of(self, s: int, t: int, namespace: str = EXACT):
        """The canonical cache key for one pair (per orientation)."""
        s, t = int(s), int(t)
        if not self.directed and t < s:
            s, t = t, s
        return (namespace, s, t)

    # ------------------------------------------------------------------
    # Read-through primitives
    # ------------------------------------------------------------------
    def lookup(self, s: int, t: int, namespace: str = EXACT):
        """``(hit, value)`` for one pair; counts the hit/miss/expiry."""
        key = self.key_of(s, t, namespace)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self.ttl_s is not None:
                if self._clock() - entry[1] >= self.ttl_s:
                    self._remove(key)
                    self.expired += 1
                    entry = None
            if entry is None:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, entry[0]

    def put(self, s: int, t: int, value: float, namespace: str = EXACT) -> None:
        """Insert/refresh one answer and enforce the size budgets."""
        key = self.key_of(s, t, namespace)
        with self._lock:
            self._store(key, value)

    def seed(self, items: Iterable[Tuple[int, int, float]]) -> int:
        """Pre-warm the exact namespace; returns how many entries landed."""
        count = 0
        with self._lock:
            for s, t, value in items:
                self._store(self.key_of(s, t), value)
                count += 1
            self.seeded += count
        return count

    def _store(self, key, value: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = (value, self._clock())
            return
        self._entries[key] = (value, self._clock())
        for v in key[1:]:
            self._by_vertex.setdefault(v, set()).add(key)
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and len(self._entries) * ENTRY_BYTES > self.max_bytes
        ):
            victim = next(iter(self._entries))
            self._remove(victim)
            self.evictions += 1

    def _remove(self, key) -> None:
        self._entries.pop(key, None)
        for v in key[1:]:
            keys = self._by_vertex.get(v)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_vertex[v]

    # ------------------------------------------------------------------
    # Invalidation (§8.3)
    # ------------------------------------------------------------------
    def invalidate(self, dirty: Optional[Iterable[int]] = None) -> int:
        """Evict entries made stale by a dirty-label set; returns the count.

        ``dirty=None`` (or a dirtiness past :data:`FLUSH_THRESHOLD` of
        the distinct cached vertices) flushes everything.  Otherwise
        eviction is exact: every cached pair whose source or target is
        in ``dirty`` goes — in *every* namespace, since a sketch upper
        bound built from a dirtied label is just as stale as an exact
        answer.
        """
        with self._lock:
            if dirty is None:
                return self._flush()
            dirty = {int(v) for v in dirty}
            touched = dirty & self._by_vertex.keys()
            if len(touched) > FLUSH_THRESHOLD * max(len(self._by_vertex), 1):
                return self._flush()
            victims = set()
            for v in touched:
                victims.update(self._by_vertex[v])
            for key in victims:
                self._remove(key)
            self.invalidated += len(victims)
            return len(victims)

    def flush(self) -> int:
        """Drop every entry (the conservative fallback); returns the count."""
        with self._lock:
            return self._flush()

    def _flush(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        self._by_vertex.clear()
        if dropped:
            self.invalidated += dropped
        self.flushes += 1
        return dropped

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        """Nominal resident size (``ENTRY_BYTES`` per entry)."""
        return len(self._entries) * ENTRY_BYTES

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """One snapshot dict — the ``stats`` wire op and benchmarks read this."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": len(self._entries) * ENTRY_BYTES,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "expired": self.expired,
                "invalidated": self.invalidated,
                "flushes": self.flushes,
                "seeded": self.seeded,
            }

    def reset_counters(self) -> None:
        """Zero the counters (entries stay); benchmarks snapshot deltas."""
        with self._lock:
            self.hits = self.misses = 0
            self.evictions = self.expired = 0
            self.invalidated = self.flushes = self.seeded = 0

    # ------------------------------------------------------------------
    # Batch read-through (shared by the engine decorator and the server)
    # ------------------------------------------------------------------
    def read_through(
        self,
        pairs: List[Tuple[int, int]],
        compute: Callable[[List[Tuple[int, int]]], List[float]],
        namespace: str = EXACT,
    ) -> List[float]:
        """Answer a batch, dispatching only the misses to ``compute``.

        Input order is preserved on reassembly; duplicate missing pairs
        are deduplicated into one computed entry (a Zipf batch is full of
        repeats — that is the point of the cache).  ``compute`` receives
        the unique missing pairs in first-appearance order.
        """
        out: List[Optional[float]] = [None] * len(pairs)
        missing: "OrderedDict[Tuple[str, int, int], List[int]]" = OrderedDict()
        miss_pairs: List[Tuple[int, int]] = []
        for i, (s, t) in enumerate(pairs):
            hit, value = self.lookup(s, t, namespace)
            if hit:
                out[i] = value
                continue
            key = self.key_of(s, t, namespace)
            slots = missing.get(key)
            if slots is None:
                missing[key] = [i]
                miss_pairs.append((int(s), int(t)))
            else:
                slots.append(i)
        if miss_pairs:
            answers = list(compute(miss_pairs))
            if len(answers) != len(miss_pairs):
                raise QueryError(
                    f"cache compute returned {len(answers)} answers "
                    f"for {len(miss_pairs)} pairs"
                )
            for (key, slots), (s, t), value in zip(
                missing.items(), miss_pairs, answers
            ):
                self.put(s, t, value, namespace)
                for i in slots:
                    out[i] = value
        return out  # type: ignore[return-value]
