"""Hot-pair caching and the approximate tier.

Three pieces, composable and individually usable:

* :class:`~repro.caching.cache.DistanceCache` — the seeded, TTL'd,
  size-budgeted LRU every tier shares (engine decorator, server-side
  shim, client-side remote tier);
* :class:`~repro.caching.engine.CachedEngine` — the ``cached:*`` engine
  decorator, reachable through the registry as ``engine="cached:fast"``,
  ``"cached:remote"``, … for both orientations;
* :class:`~repro.caching.sketch.HubSketch` /
  :class:`~repro.caching.sketch.DirectedHubSketch` — truncated-label
  upper bounds behind ``distances(..., approx=True)``.

The engine registry (:mod:`repro.core.engines`) resolves ``cached:``
names by importing this package lazily, so nothing here loads unless a
cached engine is actually requested.
"""

from repro.caching.cache import APPROX, ENTRY_BYTES, EXACT, DistanceCache
from repro.caching.engine import (
    DEFAULT_CACHE_ENTRIES,
    ENV_CACHE_ENABLE,
    ENV_CACHE_ENTRIES,
    ENV_CACHE_TTL_S,
    CachedEngine,
    cache_entries_from_env,
    cache_ttl_from_env,
    cached_factory,
)
from repro.caching.sketch import (
    DEFAULT_SKETCH_H,
    DirectedHubSketch,
    HubSketch,
    SketchTable,
)

__all__ = [
    "APPROX",
    "EXACT",
    "ENTRY_BYTES",
    "DistanceCache",
    "CachedEngine",
    "cached_factory",
    "cache_entries_from_env",
    "cache_ttl_from_env",
    "DEFAULT_CACHE_ENTRIES",
    "ENV_CACHE_ENABLE",
    "ENV_CACHE_ENTRIES",
    "ENV_CACHE_TTL_S",
    "DEFAULT_SKETCH_H",
    "SketchTable",
    "HubSketch",
    "DirectedHubSketch",
]
