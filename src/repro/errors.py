"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
being able to distinguish graph-shape problems from index/build/query
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """An operation on a graph was invalid (unknown vertex, bad weight...)."""


class ValidationError(GraphError):
    """A graph failed structural validation (self loop, non-positive weight...)."""


class IndexBuildError(ReproError):
    """Index construction failed or was given inconsistent parameters."""


class QueryError(ReproError):
    """A distance/path query was malformed (e.g. unknown endpoint)."""


class StorageError(ReproError):
    """The simulated external-memory substrate was misused or corrupted."""


class StaleIndexError(ReproError):
    """An index no longer matches its graph after dynamic updates."""
