"""One validated parser for the repo's numeric environment knobs.

Three subsystems read tuning numbers from the environment — the wire
timeout (``REPRO_WIRE_TIMEOUT_S``), the remote engine's heartbeat
interval (``REPRO_REMOTE_HEARTBEAT_S``) and the all-pairs table budget
(``REPRO_APSP_BUDGET_MB``) — and each used to hand-roll the same
float-parse-and-range-check.  They share one contract:

* unset or blank means "knob not set" (the caller picks its default);
* the value must be a **finite, non-negative** number (fractional
  allowed); ``0`` is legal and means "disabled" at every call site;
* anything else — text, a negative number, ``nan``/``inf`` — raises
  :class:`ValueError` **naming the variable and the offending value**,
  instead of silently disabling the feature or leaking a bare parse
  error with no hint of where the value came from.

Integer knobs — admission control's ``REPRO_SERVE_MAX_CONCURRENCY`` /
``REPRO_SERVE_MAX_QUEUE`` and the pipelined connection window
``REPRO_REMOTE_MAX_IN_FLIGHT`` — follow the same contract through
:func:`read_env_int`, except that fractional values are rejected (a
queue depth of 2.5 is a configuration bug) and each call site states
its own lower bound.

Boolean knobs — the caching tier's ``REPRO_CACHE_ENABLE`` — go through
:func:`read_env_bool`: strictly ``true``/``false``/``1``/``0``
(case-insensitive), because the classic truthiness trap
(``REPRO_CACHE_ENABLE=no`` silently enabling the feature) is exactly
the kind of deployment bug this module exists to make loud.

String knobs — worker address lists (``REPRO_REMOTE_ADDRS``), result
directories (``REPRO_RESULTS_DIR``) — go through :func:`read_env_str`,
which only normalizes the unset/blank contract; interpretation stays at
the call site.

Call sites that must surface a different exception class (the remote
engine raises :class:`~repro.errors.IndexBuildError` at construction)
wrap the ``ValueError``; the message, with the variable name in it, is
preserved.

This module is the **only** place allowed to touch ``os.environ`` (the
``env-discipline`` rule of ``repro analyze`` enforces it), and
:data:`ENV_VARS` below is the registry every ``REPRO_*`` name must
appear in — one catalog of knobs, each documented in the README.
"""

from __future__ import annotations

import math
import os
from typing import Optional

__all__ = [
    "ENV_VARS",
    "read_env_bool",
    "read_env_float",
    "read_env_int",
    "read_env_str",
]

#: Registry of every environment knob the project reads, with a
#: one-line description.  ``repro analyze`` fails if a ``REPRO_*`` name
#: appears anywhere in the source tree without being declared here (and
#: documented in the README's knob catalog).
ENV_VARS = {
    "REPRO_APSP_BUDGET_MB": "all-pairs snapshot table budget, megabytes",
    "REPRO_CACHE_ENABLE": "hot-pair distance cache on/off",
    "REPRO_CACHE_ENTRIES": "hot-pair cache capacity, entries",
    "REPRO_CACHE_TTL_S": "hot-pair cache entry time-to-live, seconds",
    "REPRO_LOCKCHECK": "runtime lock-order detector in the serving layer",
    "REPRO_REMOTE_ADDRS": "comma-separated shard worker addresses",
    "REPRO_REMOTE_HEARTBEAT_S": "remote engine heartbeat interval, seconds",
    "REPRO_REMOTE_MAX_IN_FLIGHT": "pipelined connection window, requests",
    "REPRO_RESULTS_DIR": "benchmark results directory override",
    "REPRO_SERVE_MAX_CONCURRENCY": "admission control concurrency slots",
    "REPRO_SERVE_MAX_QUEUE": "admission control queue depth",
    "REPRO_SOAK": "enable long-running soak tests",
    "REPRO_WIRE_TIMEOUT_S": "wire protocol socket timeout, seconds",
}

_UNSET = object()


def read_env_float(
    name: str,
    *,
    what: str = "number",
    raw: object = _UNSET,
    blank_is_unset: bool = True,
) -> Optional[float]:
    """Read and validate one numeric environment knob.

    Returns ``None`` when the variable is unset (or blank, unless
    ``blank_is_unset`` is False — then blank is invalid like any other
    non-number), the parsed float otherwise.  ``what`` names the
    quantity in the error message (e.g. ``"wire timeout in seconds"``).
    ``raw`` lets a caller that already read the environment validate the
    string it holds.
    """
    if raw is _UNSET:
        raw = os.environ.get(name)
    if raw is None:
        return None
    if not str(raw).strip():
        if blank_is_unset:
            return None
        raw = ""  # normalized for the error message
    try:
        value = float(raw)
    except (ValueError, OverflowError):
        value = math.nan
    if not math.isfinite(value) or value < 0:
        raise ValueError(
            f"{name}={raw!r} is not a valid {what}: expected a finite, "
            "non-negative number (fractional values allowed; 0 disables it)"
        )
    return value


def read_env_int(
    name: str,
    *,
    what: str = "count",
    raw: object = _UNSET,
    blank_is_unset: bool = True,
    minimum: int = 0,
) -> Optional[int]:
    """Read and validate one *integer* environment knob.

    The integer twin of :func:`read_env_float`, for knobs that count
    things (queue depths, concurrency slots, in-flight windows) where a
    fractional value is a configuration bug, not a tuning choice.
    Returns ``None`` when unset (or blank, unless ``blank_is_unset`` is
    False), the parsed int otherwise.  ``minimum`` is the smallest legal
    value (default 0 — knobs where 0 means "disabled"; admission knobs
    pass ``minimum=1``).  Errors name the variable and the bound, so a
    bad deployment manifest points at itself.
    """
    if raw is _UNSET:
        raw = os.environ.get(name)
    if raw is None:
        return None
    text = str(raw).strip()
    if not text:
        if blank_is_unset:
            return None
        text = ""  # normalized for the error message
    try:
        value = int(text)
    except ValueError:
        value = None
    if value is None or value < minimum:
        raise ValueError(
            f"{name}={raw!r} is not a valid {what}: expected an integer "
            f">= {minimum} (fractional values are not allowed)"
        )
    return value


_BOOL_VALUES = {"true": True, "1": True, "false": False, "0": False}


def read_env_bool(
    name: str,
    *,
    what: str = "flag",
    raw: object = _UNSET,
    blank_is_unset: bool = True,
) -> Optional[bool]:
    """Read and validate one *boolean* environment knob.

    Strict by design: only ``true``/``false``/``1``/``0`` (case
    insensitive, surrounding whitespace ignored) parse.  ``yes``, ``on``
    and friends are rejected — a deployment manifest that writes
    ``REPRO_CACHE_ENABLE=no`` must fail loudly, not silently pick
    whichever truthiness convention this process happens to use.
    Returns ``None`` when unset (or blank, unless ``blank_is_unset`` is
    False), the parsed bool otherwise; errors name the variable.
    """
    if raw is _UNSET:
        raw = os.environ.get(name)
    if raw is None:
        return None
    text = str(raw).strip().lower()
    if not text:
        if blank_is_unset:
            return None
        text = ""  # normalized for the error message
    if text not in _BOOL_VALUES:
        raise ValueError(
            f"{name}={raw!r} is not a valid {what}: expected one of "
            "true/false/1/0 (case-insensitive)"
        )
    return _BOOL_VALUES[text]


def read_env_str(
    name: str,
    *,
    raw: object = _UNSET,
    blank_is_unset: bool = True,
) -> Optional[str]:
    """Read one *string* environment knob.

    Only the unset/blank contract is applied here — ``None`` when the
    variable is unset (or blank/whitespace, unless ``blank_is_unset`` is
    False), the stripped string otherwise.  Interpretation (address
    parsing, path handling) stays at the call site, which also owns the
    error it raises; this reader exists so string knobs share the same
    front door as the validated numeric ones.
    """
    if raw is _UNSET:
        raw = os.environ.get(name)
    if raw is None:
        return None
    text = str(raw).strip()
    if not text and blank_is_unset:
        return None
    return text
