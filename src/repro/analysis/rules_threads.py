"""``thread-hygiene``: every thread's lifetime is an explicit decision.

The serving stack runs a dozen thread kinds (accept loops, per-connection
handlers, admission workers, wire writer/readers, heartbeats, chaos
pumps).  Each must either declare ``daemon=`` at construction (the
decision "this thread may be abandoned at exit" made visibly) or have a
reap path — a ``join()`` on the same variable/attribute, or an explicit
``.daemon =`` assignment — somewhere in the module.  A thread with
neither is the classic leak: it pins its target's state, survives
``shutdown()`` paths, and turns test teardown flaky.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_text,
    register_rule,
)

__all__ = ["ThreadHygieneRule"]


def _is_thread_call(node: ast.Call, module: ModuleInfo) -> bool:
    text = dotted_text(node.func)
    if text is None:
        return False
    if text == "threading.Thread" or text.endswith(".Thread"):
        return True
    return text == "Thread" and module.imports.get("Thread", "").endswith(
        "threading.Thread"
    )


@register_rule
class ThreadHygieneRule(Rule):
    id = "thread-hygiene"
    description = (
        "threads declare daemon= explicitly or have a join/reap path"
    )

    def visit_module(self, module: ModuleInfo, project: Project):
        findings: List[Finding] = []
        joined: Set[str] = set()
        daemon_set: Set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                receiver = dotted_text(node.func.value)
                if receiver is not None:
                    joined.add(receiver)
                    joined.add(receiver.split(".")[-1])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "daemon"
                    ):
                        receiver = dotted_text(target.value)
                        if receiver is not None:
                            daemon_set.add(receiver)
                            daemon_set.add(receiver.split(".")[-1])
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            if not _is_thread_call(call, module):
                continue
            if any(kw.arg == "daemon" for kw in call.keywords):
                continue
            target_text = self._target_text(node)
            if target_text is not None and self._reaped(
                target_text, joined, daemon_set
            ):
                continue
            findings.append(self._finding(module, call, target_text))
        # Fire-and-forget: a Thread(...) constructed outside an assignment
        # (e.g. ``threading.Thread(...).start()``) with no daemon=.
        assigned_calls = {
            id(node.value)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Assign)
        }
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and id(node) not in assigned_calls
                and _is_thread_call(node, module)
                and not any(kw.arg == "daemon" for kw in node.keywords)
            ):
                findings.append(self._finding(module, node, None))
        return findings

    @staticmethod
    def _target_text(node: ast.Assign) -> Optional[str]:
        if len(node.targets) != 1:
            return None
        return dotted_text(node.targets[0])

    @staticmethod
    def _reaped(target: str, joined: Set[str], daemon_set: Set[str]) -> bool:
        tail = target.split(".")[-1]
        return (
            target in joined
            or tail in joined
            or target in daemon_set
            or tail in daemon_set
        )

    def _finding(
        self, module: ModuleInfo, call: ast.Call, target: Optional[str]
    ) -> Finding:
        what = f"thread {target!r}" if target else "unassigned thread"
        return Finding(
            str(module.path),
            call.lineno,
            self.id,
            f"{what} created without an explicit daemon= decision or a "
            "join/reap path",
            "pass daemon=True/False at construction, or join the thread "
            "on the shutdown path",
        )
