"""``env-discipline``: every env knob routes through :mod:`repro.envvars`.

Two invariants, both learned the hard way (three raw ``os.environ``
reads leaked past the shared parser between PR 7 and PR 9):

* ``os.environ`` may only be touched inside ``envvars.py``.  Everything
  else goes through the validated readers (``read_env_float`` /
  ``read_env_int`` / ``read_env_bool`` / ``read_env_str``), which share
  the unset/blank contract and raise errors naming the variable.
  Whole-environment copies handed to subprocesses are a legitimate
  exception — suppressed at the site with ``# repro-lint:
  disable=env-discipline`` so each one stays visible.
* every ``REPRO_*`` name that appears anywhere must be declared in the
  ``ENV_VARS`` registry of ``envvars.py`` (so there is one catalog of
  knobs) and documented in the README (so operators can find it).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_text,
    register_rule,
)

__all__ = ["EnvDisciplineRule", "ENV_NAME_RE"]

ENV_NAME_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: The one file allowed to touch ``os.environ`` and the place knobs are
#: declared.  Matched by stem so fixture trees can carry their own.
_REGISTRY_STEM = "envvars"


def _declared_names(module: ModuleInfo) -> Set[str]:
    """Knob names declared in an ``envvars`` module.

    Prefers the keys of a literal ``ENV_VARS`` dict; falls back to every
    ``REPRO_*`` string literal in the file (pre-registry layouts).
    """
    env_vars = module.constants.get("ENV_VARS")
    if isinstance(env_vars, ast.Dict):
        names = {
            key.value
            for key in env_vars.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if names:
            return names
    return {
        node.value
        for node in ast.walk(module.tree)
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and ENV_NAME_RE.match(node.value)
    }


@register_rule
class EnvDisciplineRule(Rule):
    id = "env-discipline"
    description = (
        "os.environ stays inside envvars.py; every REPRO_* knob is "
        "declared in ENV_VARS and documented in README"
    )

    def __init__(self) -> None:
        self._declared: Optional[Set[str]] = None
        self._uses: List[Tuple[ModuleInfo, str, int]] = []

    def visit_module(self, module: ModuleInfo, project: Project):
        findings: List[Finding] = []
        is_registry = module.stem == _REGISTRY_STEM
        if is_registry:
            declared = _declared_names(module)
            if self._declared is None:
                self._declared = declared
            else:
                self._declared |= declared
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                if dotted_text(node) == "os.environ" and not is_registry:
                    findings.append(
                        Finding(
                            str(module.path),
                            node.lineno,
                            self.id,
                            "os.environ accessed outside envvars.py",
                            "route the knob through a repro.envvars reader "
                            "(read_env_float/int/bool/str)",
                        )
                    )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and module.imports.get(node.id) == "os.environ"
                and not is_registry
            ):
                findings.append(
                    Finding(
                        str(module.path),
                        node.lineno,
                        self.id,
                        "os.environ (imported as a name) accessed outside "
                        "envvars.py",
                        "route the knob through a repro.envvars reader",
                    )
                )
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and ENV_NAME_RE.match(node.value)
            ):
                self._uses.append((module, node.value, node.lineno))
        return findings

    def finalize(self, project: Project):
        findings: List[Finding] = []
        declared = self._declared
        if declared is None:
            # Partial scan without envvars.py in the tree: consult the
            # installed registry so `repro analyze src/repro/serving`
            # still checks declarations.
            try:
                from repro.envvars import ENV_VARS

                declared = set(ENV_VARS)
            except ImportError:  # pragma: no cover - repro always importable here
                declared = None
        readme = project.find_upwards("README.md")
        readme_text = (
            readme.read_text(encoding="utf-8") if readme is not None else None
        )
        first_use: Dict[str, Tuple[ModuleInfo, int]] = {}
        for module, name, line in self._uses:
            if name not in first_use:
                first_use[name] = (module, line)
        for name, (module, line) in sorted(first_use.items()):
            if declared is not None and name not in declared:
                findings.append(
                    Finding(
                        str(module.path),
                        line,
                        self.id,
                        f"{name} is not declared in envvars.py",
                        "add it to the ENV_VARS registry with a one-line "
                        "description",
                    )
                )
                continue
            if readme_text is not None and name not in readme_text:
                findings.append(
                    Finding(
                        str(module.path),
                        line,
                        self.id,
                        f"{name} is not documented in README.md",
                        "add it to the environment-knob catalog",
                    )
                )
        return findings
