"""``protocol-conformance``: registered engines + wire ops stay matched.

Engine side: every ``register_engine(kind, name, Factory, capabilities)``
call is resolved to its factory class (through the cross-file class
table, so snapshot engines inheriting ``distances`` three modules away
still check) and verified against the protocol spec that
:mod:`repro.core.engines` publishes as machine-readable metadata
(``PROTOCOL_METHODS``): every required method present, with parameters
compatible with the spec's names.  Capability flags must be *declared
explicitly* at the registration site (the silent ``CAP_LOCAL`` default
hid two engines with no declared traits) and drawn from
``KNOWN_CAPABILITIES``.

Wire side: every ``{"op": ...}`` payload emitted by a client module must
have a matching handler in the server module (a class with a ``_handle``
method, i.e. :class:`~repro.serving.server.ShardServer`), and every op
the server handles must have at least one emitter — a handler nobody can
reach is dead protocol surface, an emitter nobody answers is a runtime
error waiting for a fleet.  Both checks only run when the scanned tree
contains both sides, so partial scans don't produce phantom findings.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_text,
    register_rule,
)

__all__ = ["ProtocolConformanceRule"]

#: Fallback spec, used when the scanned tree does not include an
#: ``engines`` module publishing ``PROTOCOL_METHODS`` (partial scans).
_DEFAULT_PROTOCOL: Dict[str, Tuple[str, ...]] = {
    "freeze": (),
    "distance": ("source", "target"),
    "distances": ("pairs",),
    "invalidate": ("dirty",),
}


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _name_set(node: ast.AST) -> Optional[Set[str]]:
    """Names inside a set/frozenset/tuple/list literal of Names."""
    if isinstance(node, ast.Call) and dotted_text(node.func) in (
        "frozenset",
        "set",
    ):
        if len(node.args) == 1:
            return _name_set(node.args[0])
        return set()
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in node.elts:
            text = dotted_text(element)
            if text is not None:
                out.add(text.split(".")[-1])
            else:
                value = _const_str(element)
                if value is not None:
                    out.add(value)
        return out
    return None


@register_rule
class ProtocolConformanceRule(Rule):
    id = "protocol-conformance"
    description = (
        "registered engines implement the full QueryEngine protocol with "
        "declared capabilities; client wire ops and server handlers match"
    )

    def __init__(self) -> None:
        #: (module, line, factory ref or None, caps declared?, caps names or None)
        self._registrations: List[
            Tuple[ModuleInfo, int, Optional[str], bool, Optional[Set[str]]]
        ] = []
        self._protocol: Optional[Dict[str, Tuple[str, ...]]] = None
        self._known_caps: Optional[Set[str]] = None
        #: op -> first emit site (module, line)
        self._emitted: Dict[str, Tuple[ModuleInfo, int]] = {}
        #: op -> first handler site (module, line)
        self._handled: Dict[str, Tuple[ModuleInfo, int]] = {}
        self._saw_server = False
        self._saw_client = False

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def visit_module(self, module: ModuleInfo, project: Project):
        self._collect_metadata(module)
        is_server = any(
            "_handle" in cls.methods for cls in module.classes.values()
        )
        if is_server:
            self._saw_server = True
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._maybe_registration(module, node)
            if is_server:
                self._maybe_handler(module, node)
            else:
                self._maybe_emitter(module, node)
        return ()

    def _collect_metadata(self, module: ModuleInfo) -> None:
        spec_node = module.constants.get("PROTOCOL_METHODS")
        if isinstance(spec_node, ast.Dict):
            spec: Dict[str, Tuple[str, ...]] = {}
            for key, value in zip(spec_node.keys, spec_node.values):
                method = _const_str(key)
                if method is None:
                    continue
                args: List[str] = []
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        arg = _const_str(element)
                        if arg is not None:
                            args.append(arg)
                spec[method] = tuple(args)
            if spec:
                self._protocol = spec
        caps_node = module.constants.get("KNOWN_CAPABILITIES")
        if caps_node is not None:
            names = _name_set(caps_node)
            if names:
                self._known_caps = names

    def _maybe_registration(self, module: ModuleInfo, node: ast.Call) -> None:
        func = dotted_text(node.func)
        if func is None or func.split(".")[-1] != "register_engine":
            return
        if len(node.args) < 3:
            return
        factory_node = node.args[2]
        factory_ref: Optional[str]
        if isinstance(factory_node, ast.Constant) and factory_node.value is None:
            factory_ref = None  # built-in reference path (dict engine)
        else:
            factory_ref = dotted_text(factory_node)
        caps_node: Optional[ast.AST] = None
        if len(node.args) >= 4:
            caps_node = node.args[3]
        else:
            for keyword in node.keywords:
                if keyword.arg == "capabilities":
                    caps_node = keyword.value
        caps_names: Optional[Set[str]] = None
        if caps_node is not None:
            caps_names = _name_set(caps_node)
            if caps_names is None:
                # A module-level constant like _REMOTE_CAPS: resolve it.
                ref = dotted_text(caps_node)
                if ref is not None and ref in module.constants:
                    caps_names = _name_set(module.constants[ref])
        self._registrations.append(
            (module, node.lineno, factory_ref, caps_node is not None, caps_names)
        )

    def _maybe_handler(self, module: ModuleInfo, node: ast.AST) -> None:
        if not isinstance(node, ast.Compare) or len(node.comparators) != 1:
            return
        if not isinstance(node.ops[0], (ast.Eq, ast.In)):
            return
        sides = [node.left, node.comparators[0]]
        op_side = None
        for side in sides:
            text = dotted_text(side)
            if text is not None and text.split(".")[-1] == "op":
                op_side = side
            elif (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Attribute)
                and side.func.attr == "get"
                and side.args
                and _const_str(side.args[0]) == "op"
            ):
                op_side = side
        if op_side is None:
            return
        for side in sides:
            if side is op_side:
                continue
            value = _const_str(side)
            if value is not None:
                self._handled.setdefault(value, (module, side.lineno))
            elif isinstance(side, (ast.Tuple, ast.Set, ast.List)):
                for element in side.elts:
                    op = _const_str(element)
                    if op is not None:
                        self._handled.setdefault(op, (module, element.lineno))

    def _maybe_emitter(self, module: ModuleInfo, node: ast.AST) -> None:
        if not isinstance(node, ast.Dict):
            return
        for key, value in zip(node.keys, node.values):
            if _const_str(key) == "op":
                op = _const_str(value)
                if op is not None:
                    self._saw_client = True
                    self._emitted.setdefault(op, (module, node.lineno))

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def finalize(self, project: Project):
        findings: List[Finding] = []
        findings.extend(self._check_engines(project))
        findings.extend(self._check_ops())
        return findings

    def _spec(self) -> Dict[str, Tuple[str, ...]]:
        return self._protocol if self._protocol is not None else _DEFAULT_PROTOCOL

    def _check_engines(self, project: Project):
        findings: List[Finding] = []
        spec = self._spec()
        for module, line, factory_ref, has_caps, caps_names in self._registrations:
            if not has_caps:
                findings.append(
                    Finding(
                        str(module.path),
                        line,
                        self.id,
                        "engine registered without declared capability flags",
                        "pass an explicit capabilities set (the CAP_* "
                        "constants in repro.core.engines)",
                    )
                )
            elif caps_names is not None and self._known_caps:
                unknown = sorted(caps_names - self._known_caps)
                if unknown:
                    findings.append(
                        Finding(
                            str(module.path),
                            line,
                            self.id,
                            "engine registered with unknown capability "
                            f"flag(s): {', '.join(unknown)}",
                            "use the CAP_* constants listed in "
                            "KNOWN_CAPABILITIES",
                        )
                    )
            if factory_ref is None:
                continue  # dict reference path, or an unresolvable expression
            resolved = project.resolve_class(module, factory_ref)
            if resolved is None:
                continue  # factory defined outside the scanned tree
            def_module, _cls = resolved
            methods = project.class_methods(def_module, _cls.name)
            for method_name, required in spec.items():
                info = methods.get(method_name)
                if info is None:
                    findings.append(
                        Finding(
                            str(module.path),
                            line,
                            self.id,
                            f"engine {factory_ref} does not implement "
                            f"{method_name}()",
                            "every registered engine must satisfy the full "
                            "QueryEngine protocol",
                        )
                    )
                    continue
                if info.has_vararg or info.has_kwarg:
                    continue  # accepts anything the protocol sends
                if len(info.args) < len(required):
                    findings.append(
                        Finding(
                            str(module.path),
                            line,
                            self.id,
                            f"engine {factory_ref}.{method_name}() takes "
                            f"{len(info.args)} parameter(s), protocol needs "
                            f"{len(required)} ({', '.join(required)})",
                            "match the QueryEngine protocol signature",
                        )
                    )
                    continue
                extra = len(info.args) - len(required)
                if extra > info.defaults:
                    findings.append(
                        Finding(
                            str(module.path),
                            line,
                            self.id,
                            f"engine {factory_ref}.{method_name}() has "
                            f"{extra} extra required parameter(s) beyond the "
                            f"protocol ({', '.join(required) or 'no args'})",
                            "give extra parameters defaults so protocol "
                            "callers can invoke it",
                        )
                    )
        return findings

    def _check_ops(self):
        findings: List[Finding] = []
        if not (self._saw_server and self._saw_client):
            return findings  # one-sided scan: no op contract to check
        for op in sorted(set(self._emitted) - set(self._handled)):
            module, line = self._emitted[op]
            findings.append(
                Finding(
                    str(module.path),
                    line,
                    self.id,
                    f"wire op {op!r} is emitted but no server handler "
                    "matches it",
                    "add the op to the server's _handle dispatch (or drop "
                    "the emitter)",
                )
            )
        for op in sorted(set(self._handled) - set(self._emitted)):
            module, line = self._handled[op]
            findings.append(
                Finding(
                    str(module.path),
                    line,
                    self.id,
                    f"wire op {op!r} has a server handler but nothing "
                    "emits it",
                    "add a client emitter (CLI command or engine path) or "
                    "remove the dead handler",
                )
            )
        return findings
