"""``lock-discipline`` + ``lock-order``: the serving layer's lock rules.

Scope: files with a ``serving`` path segment — the thread-heavy layer
(:mod:`repro.serving`) where a blocking call under a lock turns one slow
peer into a stalled worker, and where two locks taken in opposite orders
on different threads is a latent deadlock.

``lock-discipline`` builds a per-function approximation of what runs
while a ``threading.Lock``/``RLock`` is held: ``with <lock>:`` regions
plus ``<lock>.acquire()`` … ``<lock>.release()`` spans tracked in source
order.  Inside a held region it flags

* *direct* blocking primitives — socket traffic (``sendall``/``recv``/
  ``connect``/``accept``/``create_connection``), wire framing
  (``send_frame``/``recv_frame``/``request``), ``Future.result``,
  ``join``, ``subprocess`` calls, ``sleep`` and bare ``wait`` (except a
  condition variable waiting on *itself*, which releases the lock); and
* *one-level reachable* blocking — a call to a ``self.`` method or a
  module-local function whose own body contains a direct blocking call
  (the intraprocedural call-approximation; one level deep, resolved
  through the cross-file class table for inherited methods).

``lock-order`` records an acquisition-order edge ``A -> B`` whenever
``B`` is taken while ``A`` is held (including one level through local
calls) and reports every cycle in the resulting global graph as a
potential deadlock.  Lock nodes are *named roles*, not instances:
``self.X`` inside a class becomes ``ClassName.X``, other receivers are
qualified by module stem — the same normalization the runtime detector
(:mod:`repro.analysis.lockcheck`) uses, so the static graph and the
observed graph are comparable.

Deliberate, bounded blocking-under-lock sites (a connection's send lock
around exactly one frame; a worker's dial lock around ``connect``) are
suppressed in place with ``# repro-lint: disable=lock-discipline`` and a
justification comment — the rule keeps every such exception explicit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_text,
    register_rule,
)

__all__ = ["LockDisciplineRule", "LockOrderRule", "BLOCKING_CALLS"]

#: Final attribute names of calls considered blocking in the serving
#: layer.  ``wait`` is special-cased (a condition waiting on itself is a
#: release, not a block); queue ``put``/``get`` are excluded (the send
#: queues are unbounded by design).
BLOCKING_CALLS = frozenset(
    {
        "sendall",
        "send",
        "recv",
        "recv_into",
        "accept",
        "connect",
        "connect_ex",
        "create_connection",
        "getaddrinfo",
        "send_frame",
        "recv_frame",
        "request",
        "result",
        "join",
        "wait",
        "sleep",
        "communicate",
    }
)

#: Calls whose dotted path starts with one of these are blocking no
#: matter the final attribute (process spawn + wait helpers).
_BLOCKING_PREFIXES = ("subprocess.",)

_LOCK_FACTORY_CALLS = {"Lock", "RLock", "Condition", "create_lock", "create_rlock"}


def _is_lock_factory(call: ast.Call) -> Optional[bool]:
    """True when ``call`` constructs a lock; None when it is no factory.

    Returns True for plain locks, False for ``threading.Condition`` —
    conditions are tracked (they embed a lock) but get the self-``wait``
    exemption.
    """
    text = dotted_text(call.func)
    if text is None:
        return None
    tail = text.split(".")[-1]
    if tail not in _LOCK_FACTORY_CALLS:
        return None
    return tail != "Condition"


def _looks_like_lock(text: str, known: Set[str]) -> bool:
    tail = text.split(".")[-1]
    return tail in known or "lock" in tail.lower()


@dataclass
class _FunctionFacts:
    """What one function does, for the one-level call approximation."""

    qualname: str
    class_name: Optional[str]
    #: Direct blocking calls anywhere in the body: (call text, line).
    blocking: List[Tuple[str, int]] = field(default_factory=list)
    #: Lock roles acquired anywhere in the body.
    acquires: List[str] = field(default_factory=list)


@dataclass
class _ModuleLockFacts:
    """Everything the two rules need from one scanned serving module."""

    module: ModuleInfo
    #: Blocking call observed while a lock was held:
    #: (lock role, call text, line).
    direct: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Call to a possibly-resolvable local/method callee under a lock:
    #: (lock role, callee ref, class context, line).
    calls_under_lock: List[Tuple[str, str, Optional[str], int]] = field(
        default_factory=list
    )
    #: Observed acquisition-order edges: (outer role, inner role, line).
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    functions: Dict[str, _FunctionFacts] = field(default_factory=dict)


def _in_scope(module: ModuleInfo) -> bool:
    return "serving" in module.path.parts


def _lock_role(text: str, class_name: Optional[str], module: ModuleInfo) -> str:
    """Normalize a lock receiver into a role name for the order graph."""
    if text.startswith("self.") and class_name:
        return f"{class_name}.{text[len('self.'):]}"
    if "." in text:
        return f"{module.stem}.{text.split('.')[-1]}"
    return f"{module.stem}.{text}"


class _FunctionScanner:
    """Source-order walk of one function body with a held-lock stack."""

    def __init__(
        self,
        facts: _ModuleLockFacts,
        module: ModuleInfo,
        known_locks: Set[str],
        class_name: Optional[str],
        func_facts: _FunctionFacts,
    ) -> None:
        self.facts = facts
        self.module = module
        self.known_locks = known_locks
        self.class_name = class_name
        self.func = func_facts
        #: Stack of (receiver text, role) — ``with`` regions.
        self.held: List[Tuple[str, str]] = []
        #: Manual ``acquire()`` spans still open: receiver text -> role.
        self.manual: Dict[str, str] = {}

    # -- helpers -------------------------------------------------------
    def _role(self, text: str) -> str:
        return _lock_role(text, self.class_name, self.module)

    def _all_held(self) -> List[Tuple[str, str]]:
        return self.held + [(t, r) for t, r in self.manual.items()]

    def _record_acquire(self, text: str, line: int) -> str:
        role = self._role(text)
        self.func.acquires.append(role)
        for _, outer in self._all_held():
            if outer != role:
                self.facts.edges.append((outer, role, line))
        return role

    def _on_call(self, node: ast.Call) -> None:
        text = dotted_text(node.func)
        if text is None:
            return
        tail = text.split(".")[-1]
        receiver = text.rpartition(".")[0]
        if tail == "acquire" and receiver and _looks_like_lock(
            receiver, self.known_locks
        ):
            self.manual[receiver] = self._record_acquire(receiver, node.lineno)
            return
        if tail == "release" and receiver in self.manual:
            del self.manual[receiver]
            return
        blocking = tail in BLOCKING_CALLS or text.startswith(_BLOCKING_PREFIXES)
        if blocking and tail == "join" and len(node.args) + len(node.keywords) > 1:
            # Thread/process join takes at most a timeout; a join() with
            # more arguments is a domain method (e.g. membership.join).
            blocking = False
        if blocking and tail == "wait" and receiver:
            # A condition variable waiting on itself releases the lock.
            if any(t == receiver for t, _ in self._all_held()):
                blocking = False
        if blocking:
            self.func.blocking.append((text, node.lineno))
            for _, role in self._all_held():
                self.facts.direct.append((role, text, node.lineno))
        elif self._all_held() and (
            text.startswith("self.") and text.count(".") == 1 or "." not in text
        ):
            # Possibly-resolvable local callee: defer to the one-level
            # expansion in finalize.
            for _, role in self._all_held():
                self.facts.calls_under_lock.append(
                    (role, text, self.class_name, node.lineno)
                )

    # -- walk ----------------------------------------------------------
    def walk(self, nodes) -> None:
        for node in nodes:
            self.visit(node)

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # deferred execution: not part of this body's timeline
        if isinstance(node, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in node.items:
                text = dotted_text(item.context_expr)
                if text and _looks_like_lock(text, self.known_locks):
                    role = self._record_acquire(text, item.context_expr.lineno)
                    self.held.append((text, role))
                    pushed += 1
                else:
                    self.visit(item.context_expr)
            self.walk(node.body)
            for _ in range(pushed):
                self.held.pop()
            return
        if isinstance(node, ast.Call):
            self._on_call(node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)


def _scan_module(module: ModuleInfo) -> _ModuleLockFacts:
    cached = getattr(module, "_lock_facts", None)
    if cached is not None:
        return cached
    known: Set[str] = set()
    for node in ast.walk(module.tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        is_plain = _is_lock_factory(value)
        if is_plain is None:
            continue
        for target in targets:
            text = dotted_text(target)
            if text is None:
                continue
            known.add(text.split(".")[-1])
    facts = _ModuleLockFacts(module=module)
    for class_name, class_info in module.classes.items():
        for method in class_info.methods.values():
            func_facts = _FunctionFacts(
                qualname=f"{class_name}.{method.name}", class_name=class_name
            )
            facts.functions[func_facts.qualname] = func_facts
            scanner = _FunctionScanner(
                facts, module, known, class_name, func_facts
            )
            scanner.walk(method.node.body)
    for func in module.functions.values():
        func_facts = _FunctionFacts(qualname=func.name, class_name=None)
        facts.functions[func_facts.qualname] = func_facts
        scanner = _FunctionScanner(facts, module, known, None, func_facts)
        scanner.walk(func.node.body)
    module._lock_facts = facts
    return facts


def _mro_pairs(
    project: Project,
    module: ModuleInfo,
    class_name: str,
    _seen: Optional[Set[Tuple[str, str]]] = None,
) -> List[Tuple[ModuleInfo, object]]:
    """The class plus its resolvable bases, depth-first, cross-file."""
    seen = _seen if _seen is not None else set()
    key = (module.name, class_name)
    if key in seen:
        return []
    seen.add(key)
    info = module.classes.get(class_name)
    if info is None:
        return []
    out: List[Tuple[ModuleInfo, object]] = [(module, info)]
    for base_ref in info.bases:
        resolved = project.resolve_class(module, base_ref)
        if resolved is not None:
            out.extend(_mro_pairs(project, resolved[0], resolved[1].name, seen))
    return out


def _resolve_callee(
    project: Project,
    module: ModuleInfo,
    facts: _ModuleLockFacts,
    callee: str,
    class_name: Optional[str],
) -> Optional[_FunctionFacts]:
    """One-level callee resolution: ``self.m`` (incl. inherited) or a
    module-local function."""
    if callee.startswith("self."):
        name = callee[len("self.") :]
        if class_name is None:
            return None
        for mod, cinfo in _mro_pairs(project, module, class_name):
            if name in cinfo.methods:
                if not _in_scope(mod):
                    return None  # defined outside the serving layer
                mod_facts = facts if mod is module else _scan_module(mod)
                return mod_facts.functions.get(f"{cinfo.name}.{name}")
        return None
    return facts.functions.get(callee)


@register_rule
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "no blocking call (wire, socket, join, result, subprocess) while "
        "a serving-layer lock is held"
    )

    def visit_module(self, module: ModuleInfo, project: Project):
        if not _in_scope(module):
            return ()
        facts = _scan_module(module)
        findings = [
            Finding(
                str(module.path),
                line,
                self.id,
                f"blocking call {call}() while holding {role}",
                "move the call outside the lock, or suppress with a "
                "justification if the wait is deliberately bounded",
            )
            for role, call, line in facts.direct
        ]
        for role, callee, class_name, line in facts.calls_under_lock:
            resolved = _resolve_callee(project, module, facts, callee, class_name)
            if resolved is None or not resolved.blocking:
                continue
            call_text, _ = resolved.blocking[0]
            findings.append(
                Finding(
                    str(module.path),
                    line,
                    self.id,
                    f"call to {callee}() while holding {role} reaches "
                    f"blocking {call_text}()",
                    "move the call outside the lock, or suppress with a "
                    "justification if the wait is deliberately bounded",
                )
            )
        return findings


@register_rule
class LockOrderRule(Rule):
    id = "lock-order"
    description = (
        "the global lock-acquisition-order graph of the serving layer "
        "must stay acyclic"
    )

    def __init__(self) -> None:
        #: (outer, inner) -> first site "path:line".
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def visit_module(self, module: ModuleInfo, project: Project):
        if not _in_scope(module):
            return ()
        facts = _scan_module(module)
        for outer, inner, line in facts.edges:
            self._edges.setdefault((outer, inner), (str(module.path), line))
        # One level through local calls: holding A and calling a function
        # that takes B at its top level is an A -> B edge too.
        for role, callee, class_name, line in facts.calls_under_lock:
            resolved = _resolve_callee(project, module, facts, callee, class_name)
            if resolved is None:
                continue
            for inner in resolved.acquires:
                if inner != role:
                    self._edges.setdefault(
                        (role, inner), (str(module.path), line)
                    )
        return ()

    def finalize(self, project: Project):
        adjacency: Dict[str, Set[str]] = {}
        for outer, inner in self._edges:
            adjacency.setdefault(outer, set()).add(inner)
        cycles = _find_cycles(adjacency)
        findings: List[Finding] = []
        for cycle in cycles:
            edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            sites = [
                f"{a}->{b} at {self._edges[(a, b)][0]}:{self._edges[(a, b)][1]}"
                for a, b in edges
                if (a, b) in self._edges
            ]
            path, line = self._edges.get(edges[0], ("", 0))
            findings.append(
                Finding(
                    path,
                    line,
                    self.id,
                    "lock-order cycle (potential deadlock): "
                    + " -> ".join(cycle + [cycle[0]]),
                    "pick one global order for these locks; edges: "
                    + "; ".join(sites),
                )
            )
        return findings


def _find_cycles(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles via iterative DFS; canonicalized + deduplicated."""
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(start: str) -> None:
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == start and len(path) >= 1:
                    cycle = path[:]
                    # canonical rotation so each cycle reports once
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in seen:
                        seen.add(canon)
                        cycles.append(list(canon))
                elif nxt not in path and len(path) < 8:
                    stack.append((nxt, path + [nxt]))

    for start in sorted(adjacency):
        dfs(start)
    return cycles
