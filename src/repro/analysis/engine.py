"""Rule-based AST static analysis over the repro source tree.

The serving stack's correctness rests on conventions that no runtime
test can enforce globally: env knobs must route through
:mod:`repro.envvars`, registered engines must implement the full
:class:`~repro.core.engines.QueryEngine` protocol, every wire op needs
both a client emitter and a :class:`~repro.serving.server.ShardServer`
handler, and the thread-heavy serving layer must never block on the wire
while holding a lock.  This module is the enforcement machinery; the
convention-specific logic lives in the rule packs (``rules_env``,
``rules_locks``, ``rules_protocol``, ``rules_threads``), which register
themselves here.

Design: one parse pass builds a :class:`Project` — every scanned module's
AST plus a cross-file symbol table (classes, base-class references
resolved through import aliases, module-level constants) — then each
rule walks the modules (:meth:`Rule.visit_module`) and gets a whole-
project hook (:meth:`Rule.finalize`) for checks that need to see both
sides of a contract (emitter vs handler, use vs declaration).  Findings
are structured (path, line, rule id, message, fix hint) so the CLI can
render text or JSON and CI can gate on the count.

False positives are silenced *in the code under analysis*, never in the
tool: a ``# repro-lint: disable=RULE`` (or ``disable=all``) comment on
the offending line suppresses findings of that rule on that line, which
keeps every accepted exception visible and greppable at the site that
needs it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Project",
    "Rule",
    "Report",
    "register_rule",
    "available_rules",
    "run_analysis",
    "dotted_text",
]

#: ``# repro-lint: disable=rule-a,rule-b`` — line-level suppression.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One structured lint finding, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        out = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def dotted_text(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """Signature facts of one function/method definition."""

    name: str
    args: Tuple[str, ...]  # positional params, ``self`` stripped for methods
    defaults: int  # how many trailing positional params have defaults
    has_vararg: bool
    has_kwarg: bool
    lineno: int
    node: ast.AST = field(repr=False, default=None)


@dataclass
class ClassInfo:
    """One class definition: bases (as dotted reference text) + methods."""

    name: str
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo]
    lineno: int


def _function_info(node: ast.AST, *, method: bool) -> FunctionInfo:
    a = node.args
    names = [arg.arg for arg in a.posonlyargs + a.args]
    if method and names:
        names = names[1:]  # drop self/cls
    return FunctionInfo(
        name=node.name,
        args=tuple(names),
        defaults=len(a.defaults),
        has_vararg=a.vararg is not None,
        has_kwarg=a.kwarg is not None,
        lineno=node.lineno,
        node=node,
    )


def _module_name_of(path: Path) -> str:
    """Dotted module name by walking up through ``__init__.py`` packages."""
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


class ModuleInfo:
    """One parsed source file plus its per-file symbol facts."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.stem = path.stem
        self.name = _module_name_of(path)
        #: line -> rule ids suppressed on that line ("all" = every rule).
        self.suppressions: Dict[int, Set[str]] = {}
        #: local name -> dotted origin (``from a.b import C as D`` -> D: a.b.C).
        self.imports: Dict[str, str] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module-level simple assignments (name -> value expression).
        self.constants: Dict[str, ast.AST] = {}
        self._index()

    def _index(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                if rules:
                    self.suppressions[lineno] = rules
        for node in self.tree.body:
            self._index_statement(node)
        # Imports may also appear inside functions (lazy imports); record
        # those aliases too so base classes resolved lazily still map.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(node)

    def _index_statement(self, node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            methods = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _function_info(item, method=True)
            bases = tuple(
                b for b in (dotted_text(base) for base in node.bases) if b
            )
            self.classes[node.name] = ClassInfo(
                name=node.name, bases=bases, methods=methods, lineno=node.lineno
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[node.name] = _function_info(node, method=False)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.constants[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                self.constants[node.target.id] = node.value

    def _index_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule in rules or "all" in rules)


class Project:
    """All scanned modules plus cross-file resolution helpers."""

    def __init__(self, modules: Sequence[ModuleInfo], roots: Sequence[Path]) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.roots: List[Path] = list(roots)
        self.by_path: Dict[str, ModuleInfo] = {
            str(m.path): m for m in self.modules
        }
        #: dotted name -> module.  Exact names win; bare stems are a
        #: fallback so fixture trees without packages still resolve.
        self.by_name: Dict[str, ModuleInfo] = {}
        for module in self.modules:
            self.by_name.setdefault(module.name, module)
            self.by_name.setdefault(module.stem, module)

    def module_named(self, dotted: str) -> Optional[ModuleInfo]:
        found = self.by_name.get(dotted)
        if found is not None:
            return found
        # ``repro.core.fastlabels`` vs a scan rooted below ``repro``.
        tail = dotted.split(".")[-1]
        return self.by_name.get(tail)

    def resolve_class(
        self, module: ModuleInfo, ref: str
    ) -> Optional[Tuple[ModuleInfo, ClassInfo]]:
        """Resolve a class reference (``Name`` or ``mod.Name``) seen in
        ``module`` to its defining module, following import aliases."""
        if "." not in ref:
            if ref in module.classes:
                return module, module.classes[ref]
            origin = module.imports.get(ref)
            if origin is None:
                return None
            mod_name, _, cls_name = origin.rpartition(".")
            target = self.module_named(mod_name) if mod_name else None
            if target is not None and cls_name in target.classes:
                return target, target.classes[cls_name]
            return None
        head, _, rest = ref.partition(".")
        origin = module.imports.get(head, head)
        target = self.module_named(origin)
        if target is not None and rest in target.classes:
            return target, target.classes[rest]
        return None

    def class_methods(
        self, module: ModuleInfo, class_name: str, _seen: Optional[Set[str]] = None
    ) -> Dict[str, FunctionInfo]:
        """Methods of a class including inherited ones (cross-file MRO
        approximation: depth-first over base references, first hit wins)."""
        seen = _seen if _seen is not None else set()
        key = f"{module.name}:{class_name}"
        if key in seen:
            return {}
        seen.add(key)
        info = module.classes.get(class_name)
        if info is None:
            return {}
        methods = dict(info.methods)
        for base_ref in info.bases:
            resolved = self.resolve_class(module, base_ref)
            if resolved is None:
                continue
            base_module, base_info = resolved
            for name, func in self.class_methods(
                base_module, base_info.name, seen
            ).items():
                methods.setdefault(name, func)
        return methods

    def find_upwards(self, filename: str, max_levels: int = 6) -> Optional[Path]:
        """Locate ``filename`` at or above any scan root (README finder)."""
        for root in self.roots:
            probe = root if root.is_dir() else root.parent
            for _ in range(max_levels):
                candidate = probe / filename
                if candidate.exists():
                    return candidate
                if probe.parent == probe:
                    break
                probe = probe.parent
        return None


class Rule:
    """Base class of a lint rule; subclasses register via :func:`register_rule`.

    ``visit_module`` runs once per scanned file; ``finalize`` runs once
    after every module has been visited, for whole-project contracts.
    Rule instances are created fresh per run, so per-run accumulation in
    instance state is safe.
    """

    id: str = ""
    description: str = ""

    def visit_module(
        self, module: ModuleInfo, project: Project
    ) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _RULES[cls.id] = cls
    return cls


def available_rules() -> Dict[str, str]:
    """Registered rule ids -> one-line descriptions (sorted)."""
    return {rid: _RULES[rid].description for rid in sorted(_RULES)}


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding]
    files: int
    suppressed: int
    rules: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "suppressed": self.suppressed,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s) "
            f"({self.suppressed} suppressed; rules: {', '.join(self.rules)})"
        )
        return "\n".join(lines)


def _collect_files(paths: Sequence) -> Tuple[List[Path], List[Path]]:
    roots: List[Path] = []
    files: List[Path] = []
    seen: Set[str] = set()
    for entry in paths:
        root = Path(entry)
        roots.append(root)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..") for part in path.parts):
                continue
            key = str(path.resolve())
            if key not in seen:
                seen.add(key)
                files.append(path)
    return files, roots


def run_analysis(
    paths: Sequence, rules: Optional[Sequence[str]] = None
) -> Report:
    """Scan ``paths`` (files or directories) with the selected rules.

    ``rules`` is a sequence of registered rule ids (default: all).
    Unknown ids raise ``ValueError`` naming the known ones.
    """
    # Import for side effects: the built-in rule packs register on import.
    from repro.analysis import rules_env, rules_locks, rules_protocol, rules_threads  # noqa: F401

    if rules is None:
        rule_ids = sorted(_RULES)
    else:
        rule_ids = list(rules)
        unknown = [r for r in rule_ids if r not in _RULES]
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)} "
                f"(available: {', '.join(sorted(_RULES))})"
            )
    files, roots = _collect_files(paths)
    modules: List[ModuleInfo] = []
    findings: List[Finding] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(str(path), 0, "syntax-error", f"unreadable file: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    str(path),
                    exc.lineno or 0,
                    "syntax-error",
                    f"cannot parse: {exc.msg}",
                )
            )
            continue
        modules.append(ModuleInfo(path, source, tree))
    project = Project(modules, roots)
    instances = [_RULES[rid]() for rid in rule_ids]
    for rule in instances:
        for module in modules:
            findings.extend(rule.visit_module(module, project))
        findings.extend(rule.finalize(project))
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        module = project.by_path.get(finding.path)
        if module is not None and module.suppressed(finding.rule, finding.line):
            suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return Report(
        findings=kept,
        files=len(files),
        suppressed=suppressed,
        rules=tuple(rule_ids),
    )
