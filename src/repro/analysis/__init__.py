"""Project-invariant static analysis + runtime lock instrumentation.

``repro analyze`` runs the rule packs in this package over a source
tree; :mod:`repro.analysis.lockcheck` is the runtime complement that
validates the static lock-order model against real executions.
"""

from repro.analysis.engine import (
    Finding,
    Report,
    Rule,
    available_rules,
    register_rule,
    run_analysis,
)

# Importing the rule packs registers them with the engine.
from repro.analysis import (  # noqa: F401  (registration side effects)
    rules_env,
    rules_locks,
    rules_protocol,
    rules_threads,
)

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "available_rules",
    "register_rule",
    "run_analysis",
]
