"""Runtime lock-order detector: the dynamic twin of the ``lock-order`` rule.

With ``REPRO_LOCKCHECK=1`` set, every serving-layer lock created through
:func:`create_lock`/:func:`create_rlock` is a :class:`CheckedLock`:
acquisitions and releases feed a process-global recorder that maintains
per-thread held-lock stacks and a global acquisition-order graph keyed
by lock *role name* (``shard-server.state``, ``remote.worker-dial``, …)
— the same normalization the static rule uses, so the observed graph is
directly comparable to the statically derived one.

Two failure modes are loud:

* acquiring lock ``B`` while holding ``A`` when the graph already
  contains a path ``B -> … -> A`` is an **order inversion** — the
  canonical two-thread deadlock shape, caught even when the interleaving
  that would actually deadlock never happens in this run.  The inversion
  is recorded and raised as :class:`LockOrderError` at the acquire site
  (the lock is released first, so the raise cannot itself deadlock the
  process).  Inside a chaos fleet the raise surfaces as a failed query,
  which fails the suite.
* re-acquiring a **non-reentrant** lock the same thread already holds —
  detected *before* the inner ``acquire`` would block forever.

Without the env flag, :func:`create_lock` returns plain
``threading.Lock`` objects — zero overhead in production.  The serving
and chaos test suites run with the flag in CI
(``tests/serving/conftest.py`` additionally asserts a clean graph after
every test), which is how the static lock-order rule's model is
validated against real executions.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.envvars import read_env_bool
from repro.errors import ReproError

__all__ = [
    "LOCKCHECK_ENV",
    "LockOrderError",
    "CheckedLock",
    "enabled",
    "create_lock",
    "create_rlock",
    "recorder",
    "reset",
    "report",
    "assert_no_inversions",
]

#: Boolean env knob turning the instrumented locks on (default off).
LOCKCHECK_ENV = "REPRO_LOCKCHECK"


class LockOrderError(ReproError):
    """An observed lock-order inversion or illegal re-acquisition."""


def enabled() -> bool:
    """True when :data:`LOCKCHECK_ENV` asks for instrumented locks."""
    return bool(
        read_env_bool(LOCKCHECK_ENV, what="runtime lock-order detector flag")
    )


def _call_site() -> str:
    """``file:line`` of the acquire call, skipping this module's frames."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only if called at module top
        return "?"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class _Recorder:
    """Process-global acquisition recorder (thread-safe)."""

    def __init__(self) -> None:
        self._mu = threading.Lock()  # guards edges/inversions, never exported
        self._local = threading.local()
        #: (outer role, inner role) -> first observed acquire site.
        self._edges: Dict[Tuple[str, str], str] = {}
        self._inversions: List[dict] = []

    # -- per-thread state ---------------------------------------------
    def _held(self) -> List[Tuple[str, "CheckedLock"]]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
        return held

    # -- events --------------------------------------------------------
    def check_reacquire(self, lock: "CheckedLock") -> None:
        """Raise before a same-thread re-acquire of a non-reentrant lock
        would block forever on the inner ``threading.Lock``."""
        if lock.reentrant:
            return
        if any(handle is lock for _, handle in self._held()):
            entry = {
                "kind": "reacquire",
                "lock": lock.name,
                "site": _call_site(),
                "held": [name for name, _ in self._held()],
            }
            with self._mu:
                self._inversions.append(entry)
            raise LockOrderError(
                f"thread {threading.current_thread().name} re-acquired "
                f"non-reentrant lock {lock.name!r} at {entry['site']} "
                f"(held: {entry['held']})"
            )

    def acquired(self, lock: "CheckedLock") -> None:
        """Record a successful acquire; raise on an order inversion."""
        held = self._held()
        site = _call_site()
        inversion: Optional[dict] = None
        with self._mu:
            for outer_name, _ in held:
                if outer_name == lock.name:
                    # Sibling instances of the same role (e.g. two
                    # connections' send locks) impose no order.
                    continue
                edge = (outer_name, lock.name)
                if edge not in self._edges:
                    self._edges[edge] = site
                    if inversion is None and self._path(lock.name, outer_name):
                        inversion = {
                            "kind": "inversion",
                            "edge": list(edge),
                            "site": site,
                            "reverse_path": self._trace(lock.name, outer_name),
                            "held": [name for name, _ in held],
                        }
            if inversion is not None:
                self._inversions.append(inversion)
        if inversion is not None:
            # Not appended to the held stack: the caller releases the
            # inner lock and re-raises, so the acquire never happened.
            raise LockOrderError(
                f"lock-order inversion: acquired {lock.name!r} while "
                f"holding {inversion['held']} at {site}, but the observed "
                f"order graph already has "
                f"{' -> '.join(inversion['reverse_path'])}"
            )
        held.append((lock.name, lock))

    def released(self, lock: "CheckedLock") -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][1] is lock:
                del held[index]
                return

    # -- graph ---------------------------------------------------------
    def _path(self, src: str, dst: str) -> bool:
        """True when ``src -> … -> dst`` exists (callers hold ``_mu``)."""
        return self._trace(src, dst) is not None

    def _trace(self, src: str, dst: str) -> Optional[List[str]]:
        adjacency: Dict[str, List[str]] = {}
        for outer, inner in self._edges:
            adjacency.setdefault(outer, []).append(inner)
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == dst:
                    return path + [dst]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict:
        with self._mu:
            return {
                "edges": [
                    {"outer": outer, "inner": inner, "site": site}
                    for (outer, inner), site in sorted(self._edges.items())
                ],
                "inversions": [dict(entry) for entry in self._inversions],
            }

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._inversions.clear()
        # Per-thread stacks live in threading.local; only the calling
        # thread's can be dropped here (enough for test isolation).
        self._local.held = []


_RECORDER = _Recorder()


def recorder() -> _Recorder:
    """The process-global recorder (one graph per process)."""
    return _RECORDER


class CheckedLock:
    """A named, order-checked lock with the ``threading.Lock`` surface."""

    def __init__(self, name: str, *, reentrant: bool = False) -> None:
        self.name = str(name)
        self.reentrant = bool(reentrant)
        self._inner: Union[threading.Lock, threading.RLock]
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _RECORDER.check_reacquire(self)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            try:
                _RECORDER.acquired(self)
            except LockOrderError:
                # Release before raising so the failed acquire cannot
                # strand the lock and wedge unrelated threads.
                self._inner.release()
                raise
        return ok

    def release(self) -> None:
        _RECORDER.released(self)
        self._inner.release()

    def locked(self) -> bool:
        inner = self._inner
        if hasattr(inner, "locked"):
            return inner.locked()
        return False  # pragma: no cover - RLock before 3.14

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CheckedLock({self.name!r}, reentrant={self.reentrant})"


def create_lock(name: str):
    """A serving-layer lock: plain ``threading.Lock`` unless
    :data:`LOCKCHECK_ENV` turns the instrumented wrapper on."""
    if enabled():
        return CheckedLock(name)
    return threading.Lock()


def create_rlock(name: str):
    """Reentrant twin of :func:`create_lock`."""
    if enabled():
        return CheckedLock(name, reentrant=True)
    return threading.RLock()


def reset() -> None:
    """Drop the recorded graph (test isolation)."""
    _RECORDER.reset()


def report() -> dict:
    """The observed order graph + any recorded inversions."""
    return _RECORDER.snapshot()


def assert_no_inversions() -> None:
    """Raise :class:`LockOrderError` if any inversion was recorded."""
    snap = _RECORDER.snapshot()
    if snap["inversions"]:
        lines = [
            f"- {entry.get('kind')}: {entry}" for entry in snap["inversions"]
        ]
        raise LockOrderError(
            "observed lock-order violations:\n" + "\n".join(lines)
        )
