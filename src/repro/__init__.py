"""IS-LABEL: independent-set based labeling for P2P distance queries.

A full reproduction of Fu, Wu, Cheng, Chu and Wong, *"IS-LABEL: an
Independent-Set based Labeling Scheme for Point-to-Point Distance Querying
on Large Graphs"* (VLDB 2013, arXiv:1211.2367).

Quickstart::

    from repro import Graph, ISLabelIndex

    g = Graph([(1, 2), (2, 3), (3, 4, 2), (4, 1)])
    index = ISLabelIndex.build(g)
    index.distance(2, 4)     # -> 2

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table.
"""

from repro.core import (
    DirectedISLabelIndex,
    DynamicDirectedISLabelIndex,
    DynamicISLabelIndex,
    ISLabelIndex,
    IndexStats,
    PathReconstructor,
    QueryEngine,
    QueryResult,
    VertexHierarchy,
    available_engines,
    build_hierarchy,
    engine_capabilities,
    engines_with_capability,
    load_directed_index,
    load_dynamic_directed_index,
    load_dynamic_index,
    load_index,
    register_engine,
    save_directed_index,
    save_dynamic_directed_index,
    save_dynamic_index,
    save_index,
    save_snapshot,
)
from repro.errors import (
    GraphError,
    IndexBuildError,
    QueryError,
    ReproError,
    StaleIndexError,
    StorageError,
    ValidationError,
)
from repro.graph import CSRDiGraph, CSRGraph, DiGraph, Graph, graph_stats

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "DiGraph",
    "CSRGraph",
    "CSRDiGraph",
    "graph_stats",
    "ISLabelIndex",
    "IndexStats",
    "QueryResult",
    "VertexHierarchy",
    "build_hierarchy",
    "PathReconstructor",
    "DirectedISLabelIndex",
    "DynamicISLabelIndex",
    "DynamicDirectedISLabelIndex",
    "QueryEngine",
    "register_engine",
    "available_engines",
    "engine_capabilities",
    "engines_with_capability",
    "save_index",
    "load_index",
    "save_directed_index",
    "load_directed_index",
    "save_snapshot",
    "save_dynamic_index",
    "load_dynamic_index",
    "save_dynamic_directed_index",
    "load_dynamic_directed_index",
    "ReproError",
    "GraphError",
    "ValidationError",
    "IndexBuildError",
    "QueryError",
    "StorageError",
    "StaleIndexError",
    "__version__",
]
