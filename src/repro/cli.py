"""Command-line interface: ``python -m repro <command>``.

Commands
--------
build           Build an IS-LABEL index from an edge-list file.
query           Answer distance (or path) queries against a saved index.
stats           Show construction statistics of a saved index.
build-directed  Build a directed (§8.2) index from a directed edge list.
query-directed  Answer directed distance/path queries against a saved index.
snapshot        Convert a saved index into a zero-copy serving snapshot.
serve           Serve an index/snapshot over the shard wire protocol.
rebalance       Move a worker's shard slice to a freshly spawned worker:
                spawn, join (epoch bump), drain the old owner.
serve-bench     Load an index/snapshot and measure serving throughput + RSS
                (``--remote host:port,...`` benches a shard-worker fleet
                through the scheduled remote engine instead).
dataset         Generate one of the paper's dataset stand-ins as an edge list.
loadgen         Run a named, seeded traffic scenario (``repro.loadgen``)
                against a local engine or a spawned remote fleet, and
                report p50/p90/p99/throughput (``--list`` names them).
example         Print the paper's Figure 1-3 walkthrough.

``--engine`` on the build/query/serve commands selects the compute backend
by registry name (:mod:`repro.core.engines`): the array/CSR fast engines,
the mmap/sharded snapshot-serving engines, or the dict reference.  The
query and serve commands accept both stream index files and snapshots
(file or sharded directory) — the magic is sniffed.

Examples
--------
python -m repro dataset google -o google.txt --scale 0.1
python -m repro build google.txt -o google.islx --with-paths
python -m repro stats google.islx
python -m repro query google.islx 3 847 --path
python -m repro snapshot google.islx -o google.snap --shards 4
python -m repro serve-bench google.snap --engine sharded --workers 4
python -m repro serve google.shards --port 7071 --owned 0,1 --strict
python -m repro serve-bench google.shards --remote 127.0.0.1:7071
python -m repro rebalance google.shards --source 127.0.0.1:7071
python -m repro build-directed roads.txt -o roads.isld
python -m repro query-directed roads.isld 3 847
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import subprocess
import sys
import time
from typing import List, Optional, Tuple

from repro.core.directed import DirectedISLabelIndex
from repro.core.engines import DIRECTED, UNDIRECTED, available_engines
from repro.core.index import ISLabelIndex
from repro.core.paths import PathReconstructor
from repro.core.serialization import (
    load_directed_index,
    load_index,
    save_directed_index,
    save_index,
    save_snapshot,
)
from repro.envvars import read_env_bool, read_env_int
from repro.errors import ReproError
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats, human_bytes
from repro.workloads.datasets import DATASET_NAMES, load_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IS-LABEL: distance labeling for point-to-point queries",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p_build = commands.add_parser("build", help="build an index from an edge list")
    p_build.add_argument("graph", help="edge-list file (u v [w] per line)")
    p_build.add_argument("-o", "--output", required=True, help="index output path")
    p_build.add_argument("--sigma", type=float, default=0.95, help="σ threshold")
    p_build.add_argument("--k", type=int, default=None, help="explicit k (overrides σ)")
    p_build.add_argument("--full", action="store_true", help="full hierarchy (§4)")
    p_build.add_argument(
        "--with-paths", action="store_true", help="enable §8.1 path reconstruction"
    )
    p_build.add_argument(
        "--engine",
        choices=available_engines(UNDIRECTED),
        default="fast",
        help="compute backend: array/CSR fast engine or the dict reference",
    )

    p_query = commands.add_parser("query", help="query a saved index")
    p_query.add_argument("index", help="index file from `repro build`")
    p_query.add_argument("source", type=int)
    p_query.add_argument("target", type=int)
    p_query.add_argument(
        "--path", action="store_true", help="print the shortest path too"
    )
    p_query.add_argument(
        "--approx",
        action="store_true",
        help="answer from the hub-sketch tier: an upper bound on the "
        "true distance (frequently exact, flagged when provably so) "
        "computed from the top-h label entries with no search stage",
    )
    p_query.add_argument(
        "--engine",
        choices=available_engines(UNDIRECTED),
        default="fast",
        help="query backend for the loaded index",
    )

    p_dbuild = commands.add_parser(
        "build-directed", help="build a directed (§8.2) index from an edge list"
    )
    p_dbuild.add_argument("graph", help="directed edge-list file (u v [w] per arc)")
    p_dbuild.add_argument("-o", "--output", required=True, help="index output path")
    p_dbuild.add_argument("--sigma", type=float, default=0.95, help="σ threshold")
    p_dbuild.add_argument(
        "--k", type=int, default=None, help="explicit k (overrides σ)"
    )
    p_dbuild.add_argument("--full", action="store_true", help="full hierarchy")
    p_dbuild.add_argument(
        "--with-paths",
        action="store_true",
        help="enable §8.1 directed path reconstruction",
    )
    p_dbuild.add_argument(
        "--engine",
        choices=available_engines(DIRECTED),
        default="fast",
        help="compute backend: out/in array fast engine or the dict reference",
    )

    p_dquery = commands.add_parser(
        "query-directed", help="query a saved directed index"
    )
    p_dquery.add_argument("index", help="index file from `repro build-directed`")
    p_dquery.add_argument("source", type=int)
    p_dquery.add_argument("target", type=int)
    p_dquery.add_argument(
        "--path", action="store_true", help="print the shortest directed path too"
    )
    p_dquery.add_argument(
        "--approx",
        action="store_true",
        help="answer from the directed hub-sketch tier (upper bound; "
        "see `repro query --approx`)",
    )
    p_dquery.add_argument(
        "--engine",
        choices=available_engines(DIRECTED),
        default="fast",
        help="query backend for the loaded index",
    )

    p_snap = commands.add_parser(
        "snapshot", help="convert a saved index into a zero-copy serving snapshot"
    )
    p_snap.add_argument("index", help="index file from `repro build[-directed]`")
    p_snap.add_argument("-o", "--output", required=True, help="snapshot path")
    p_snap.add_argument(
        "--shards",
        type=int,
        default=1,
        help="write this many vertex-id-range label shards (a directory) "
        "instead of one file",
    )
    p_snap.add_argument(
        "--checksum",
        action="store_true",
        help="stamp every snapshot section with a CRC32, verified lazily "
        "on first map (corruption loads as a loud error, not wrong answers)",
    )

    p_server = commands.add_parser(
        "serve",
        help="serve an index or snapshot over the shard wire protocol "
        "(one worker of a remote fleet)",
    )
    p_server.add_argument("index", help="stream index or snapshot (file/dir)")
    p_server.add_argument(
        "--engine",
        choices=available_engines(UNDIRECTED),
        default="sharded",
        help="serving backend (default: sharded)",
    )
    p_server.add_argument("--host", default="127.0.0.1")
    p_server.add_argument(
        "--port", type=int, default=0, help="0 = let the OS pick a free port"
    )
    p_server.add_argument(
        "--owned",
        default=None,
        help="comma-separated shard indices this worker owns "
        "(default: all shards)",
    )
    p_server.add_argument(
        "--strict",
        action="store_true",
        help="enforce ownership: reject buckets touching none of the "
        "owned shards with the not_owner error kind (clients treat it "
        "as a membership-staleness signal)",
    )
    p_server.add_argument(
        "--epoch",
        type=int,
        default=0,
        help="membership epoch a supervisor assigned this worker",
    )
    p_server.add_argument(
        "--max-concurrency",
        type=int,
        default=None,
        help="admission executor: searches allowed to run at once "
        "(default 1: engine calls serialize; higher overlaps decode/"
        "encode/socket I/O across requests; env fallback "
        "REPRO_SERVE_MAX_CONCURRENCY)",
    )
    p_server.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="admission executor: searches allowed to wait before new "
        "ones are rejected with the overloaded error kind (default 128; "
        "env fallback REPRO_SERVE_MAX_QUEUE)",
    )
    p_server.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="enable the server-side hot-pair cache with this entry "
        "budget (env fallbacks: REPRO_CACHE_ENTRIES for the budget, "
        "REPRO_CACHE_ENABLE=true to turn the tier on without a flag)",
    )
    p_server.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="seconds a cached answer may be served before expiring "
        "(0 = no TTL; env fallback REPRO_CACHE_TTL_S); implies the "
        "cache is enabled",
    )

    p_rebal = commands.add_parser(
        "rebalance",
        help="spawn a fresh worker for a shard slice and drain its old owner",
    )
    p_rebal.add_argument("index", help="stream index or snapshot (file/dir)")
    p_rebal.add_argument(
        "--source",
        required=True,
        metavar="HOST:PORT",
        help="the worker currently owning the slice (will be drained)",
    )
    p_rebal.add_argument(
        "--owned",
        default=None,
        help="comma-separated shard indices to move (default: everything "
        "the source worker owns)",
    )
    p_rebal.add_argument(
        "--engine",
        choices=available_engines(UNDIRECTED),
        default="sharded",
        help="serving backend of the spawned worker (default: sharded)",
    )
    p_rebal.add_argument("--host", default="127.0.0.1")
    p_rebal.add_argument(
        "--port", type=int, default=0, help="0 = let the OS pick a free port"
    )
    p_rebal.add_argument(
        "--strict",
        action="store_true",
        help="spawn the new worker in strict-ownership mode",
    )
    p_rebal.add_argument(
        "--stop-source",
        action="store_true",
        help="shut the drained source worker down instead of leaving it "
        "draining (it answers not_owner until then)",
    )

    p_serve = commands.add_parser(
        "serve-bench",
        help="load an index or snapshot and measure cold-load time, "
        "query throughput and resident memory",
    )
    p_serve.add_argument("index", help="stream index or snapshot (file/dir)")
    p_serve.add_argument(
        "--engine",
        choices=available_engines(UNDIRECTED),
        default="mmap",
        help="serving backend (default: mmap)",
    )
    p_serve.add_argument(
        "--queries", type=int, default=2000, help="random query pairs to run"
    )
    p_serve.add_argument("--seed", type=int, default=7, help="query RNG seed")
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="additionally spawn N worker processes, each loading and "
        "serving its own slice (reports per-worker RSS and aggregate QPS)",
    )
    p_serve.add_argument(
        "--json", action="store_true", help="emit one JSON object (worker mode)"
    )
    p_serve.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="bench a running shard-worker fleet through the remote "
        "engine (queries are scheduled per shard pair and sent over "
        "the wire; --engine is ignored for the compute).  The artifact "
        "is still opened locally for its coverage metadata — point this "
        "at the snapshot (lazy, O(1)) rather than a stream file, whose "
        "parse then dominates the reported load_seconds/RSS",
    )

    p_stats = commands.add_parser("stats", help="show index statistics")
    p_stats.add_argument("index", help="index file from `repro build`")
    p_stats.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include the per-level peeling trace and label distribution",
    )

    p_dataset = commands.add_parser(
        "dataset", help="generate a dataset stand-in as an edge list"
    )
    p_dataset.add_argument("name", choices=DATASET_NAMES)
    p_dataset.add_argument("-o", "--output", required=True)
    p_dataset.add_argument("--scale", type=float, default=1.0)

    p_load = commands.add_parser(
        "loadgen",
        help="run a named, seeded traffic scenario and report percentiles",
    )
    p_load.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (see --list); seeded and fully replayable",
    )
    p_load.add_argument(
        "--list", action="store_true", help="list available scenarios and exit"
    )
    p_load.add_argument(
        "--engine",
        default=None,
        help="override the scenario's engine (any registry name, or "
        "'remote' to spawn a worker fleet for the run)",
    )
    p_load.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the remote fleet size (workers per tenant)",
    )
    p_load.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override duration in seconds (0 = one pass over the "
        "seeded stream; > 0 cycles it until the wall clock expires)",
    )
    p_load.add_argument(
        "--seed", type=int, default=None, help="override the scenario seed"
    )
    p_load.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the JSON artifact (spec + summaries) to this path",
    )

    p_fstats = commands.add_parser(
        "fleet-stats",
        help="ask one fleet worker for its serving statistics",
    )
    p_fstats.add_argument(
        "worker", metavar="HOST:PORT", help="the worker to interrogate"
    )
    p_fstats.add_argument(
        "--timeout", type=float, default=10.0, help="wire timeout in seconds"
    )

    p_analyze = commands.add_parser(
        "analyze",
        help="run the project-invariant static analysis (lint) rules",
    )
    p_analyze.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    p_analyze.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    p_analyze.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="findings as human-readable lines or one JSON document",
    )
    p_analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )

    commands.add_parser("example", help="print the Figure 1-3 walkthrough")
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    started = time.perf_counter()
    index = ISLabelIndex.build(
        graph,
        sigma=None if (args.k is not None or args.full) else args.sigma,
        k=args.k,
        full=args.full,
        with_paths=args.with_paths,
        engine=args.engine,
    )
    elapsed = time.perf_counter() - started
    nbytes = save_index(index, args.output)
    st = index.stats
    print(
        f"built k={st.k} index over |V|={st.num_vertices}, |E|={st.num_edges} "
        f"in {elapsed:.2f}s"
    )
    print(
        f"G_k: {st.gk_vertices} vertices / {st.gk_edges} edges; "
        f"labels: {st.label_entries} entries ({human_bytes(st.label_bytes)})"
    )
    print(f"wrote {args.output} ({human_bytes(nbytes)})")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index, engine=args.engine)
    if args.path:
        reconstructor = PathReconstructor(index)
        dist, path = reconstructor.shortest_path(args.source, args.target)
        if path is None:
            print(f"dist({args.source}, {args.target}) = inf (disconnected)")
        else:
            print(f"dist({args.source}, {args.target}) = {dist}")
            print(" -> ".join(str(v) for v in path))
    elif args.approx:
        bound, exact = index.hub_sketch().bound(args.source, args.target)
        rendered = "inf" if math.isinf(bound) else str(bound)
        note = "exact" if exact else "upper bound"
        print(f"dist({args.source}, {args.target}) <= {rendered} ({note})")
    else:
        dist = index.distance(args.source, args.target)
        rendered = "inf" if math.isinf(dist) else str(dist)
        print(f"dist({args.source}, {args.target}) = {rendered}")
    return 0


def _cmd_build_directed(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, directed=True)
    started = time.perf_counter()
    index = DirectedISLabelIndex.build(
        graph,
        sigma=None if (args.k is not None or args.full) else args.sigma,
        k=args.k,
        full=args.full,
        with_paths=args.with_paths,
        engine=args.engine,
    )
    elapsed = time.perf_counter() - started
    nbytes = save_directed_index(index, args.output)
    hierarchy = index.hierarchy
    print(
        f"built k={index.k} directed index over |V|={graph.num_vertices}, "
        f"|A|={graph.num_edges} in {elapsed:.2f}s"
    )
    print(
        f"G_k: {hierarchy.gk.num_vertices} vertices / "
        f"{hierarchy.gk.num_edges} arcs; "
        f"labels: {index.label_entries} out+in entries"
    )
    print(f"wrote {args.output} ({human_bytes(nbytes)})")
    return 0


def _cmd_query_directed(args: argparse.Namespace) -> int:
    index = load_directed_index(args.index, engine=args.engine)
    if args.path:
        dist, path = index.shortest_path(args.source, args.target)
        if path is None:
            print(f"dist({args.source}, {args.target}) = inf (unreachable)")
        else:
            print(f"dist({args.source}, {args.target}) = {dist}")
            print(" -> ".join(str(v) for v in path))
    elif args.approx:
        bound, exact = index.hub_sketch().bound(args.source, args.target)
        rendered = "inf" if math.isinf(bound) else str(bound)
        note = "exact" if exact else "upper bound"
        print(f"dist({args.source}, {args.target}) <= {rendered} ({note})")
    else:
        dist = index.distance(args.source, args.target)
        rendered = "inf" if math.isinf(dist) else str(dist)
        print(f"dist({args.source}, {args.target}) = {rendered}")
    return 0


def _is_directed_artifact(path: str) -> bool:
    """Sniff whether ``path`` holds a directed index or snapshot."""
    from repro.core.serialization import is_directed_artifact

    return is_directed_artifact(path)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if _is_directed_artifact(args.index):
        index = load_directed_index(args.index, engine="fast")
    else:
        index = load_index(args.index, engine="fast")
    nbytes = save_snapshot(
        index, args.output, shards=args.shards, checksum=args.checksum
    )
    kind = "directed" if isinstance(index, DirectedISLabelIndex) else "undirected"
    layout = f"{args.shards} shards" if args.shards > 1 else "single file"
    if args.checksum:
        layout += ", crc32"
    print(
        f"wrote {kind} snapshot {args.output} "
        f"({human_bytes(nbytes)}, {layout})"
    )
    return 0


def _serve_bench_once(
    path: str,
    engine: str,
    queries: int,
    seed: int,
    remote: Optional[str] = None,
) -> dict:
    """Load + query one index in this process; returns the measurements.

    With ``remote`` set, the artifact is only loaded for its coverage
    metadata (query-pair generation and vertex checks); the compute is
    the registered ``"remote"`` engine, scheduling shard-pair buckets
    over the given worker fleet.
    """
    from repro.bench.harness import process_rss_kib

    directed = _is_directed_artifact(path)
    started = time.perf_counter()
    if remote is not None:
        from repro.core.engines import resolve_engine

        if directed:
            index = load_directed_index(path, engine="dict")
            factory = resolve_engine(DIRECTED, "remote")
        else:
            index = load_index(path, engine="dict")
            factory = resolve_engine(UNDIRECTED, "remote")
        index._fast = factory(addresses=remote)
    elif directed:
        index = load_directed_index(path, engine=engine)
    else:
        index = load_index(path, engine=engine)
    load_seconds = time.perf_counter() - started

    rng = random.Random(seed)
    covered = sorted(index.hierarchy.level_of)
    pairs = [
        (rng.choice(covered), rng.choice(covered)) for _ in range(queries)
    ]
    started = time.perf_counter()
    index.distances(pairs)
    batch_seconds = time.perf_counter() - started
    rss, anon = process_rss_kib()
    return {
        "engine": index.engine,
        "directed": directed,
        "load_seconds": load_seconds,
        "queries": len(pairs),
        "batch_seconds": batch_seconds,
        "qps": len(pairs) / batch_seconds if batch_seconds else float("inf"),
        "rss_kib": rss,
        "private_kib": anon,
    }


def _admission_knob(flag_value: Optional[int], env: str, what: str, default: int) -> int:
    """Resolve one admission integer: flag wins, then env, then default."""
    if flag_value is not None:
        return flag_value
    try:
        parsed = read_env_int(env, what=what, minimum=1)
    except ValueError as exc:
        raise ReproError(str(exc)) from None
    return parsed if parsed is not None else default


def _serve_cache_knobs(
    args: argparse.Namespace,
) -> Tuple[Optional[int], Optional[float]]:
    """Resolve the server-side cache tier: flags > environment > off.

    The tier is on when either flag is given, or when
    ``REPRO_CACHE_ENABLE`` parses true (then the budget and TTL come
    from ``REPRO_CACHE_ENTRIES`` / ``REPRO_CACHE_TTL_S`` or their
    defaults).  All three env knobs go through the strict
    :mod:`repro.envvars` parsers, so a typo'd manifest fails loudly.
    """
    from repro.caching.engine import (
        DEFAULT_CACHE_ENTRIES,
        ENV_CACHE_ENABLE,
        cache_entries_from_env,
        cache_ttl_from_env,
    )

    try:
        enabled = read_env_bool(ENV_CACHE_ENABLE, what="cache enable flag")
        env_entries = cache_entries_from_env()
        env_ttl = cache_ttl_from_env()
    except (ValueError, ReproError) as exc:
        raise ReproError(str(exc)) from None
    entries = args.cache_entries if args.cache_entries is not None else env_entries
    ttl = args.cache_ttl if args.cache_ttl is not None else env_ttl
    if ttl == 0:
        ttl = None  # 0 means "no TTL" on the flag, like the env knob
    if args.cache_entries is None and args.cache_ttl is None and not enabled:
        return None, None
    return (entries if entries is not None else DEFAULT_CACHE_ENTRIES), ttl


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.server import ShardServer, load_serving_index

    index = load_serving_index(args.index, engine=args.engine)
    owned = None
    if args.owned:
        owned = [int(x) for x in args.owned.split(",") if x.strip()]
    cache_entries, cache_ttl = _serve_cache_knobs(args)
    server = ShardServer(
        index,
        host=args.host,
        port=args.port,
        owned=owned,
        strict=args.strict,
        epoch=args.epoch,
        max_concurrency=_admission_knob(
            args.max_concurrency,
            "REPRO_SERVE_MAX_CONCURRENCY",
            "admission concurrency",
            1,
        ),
        max_queue=_admission_knob(
            args.max_queue, "REPRO_SERVE_MAX_QUEUE", "admission queue depth", 128
        ),
        cache_entries=cache_entries,
        cache_ttl_s=cache_ttl,
    )
    server.bind()
    host, port = server.address
    # One parseable line so fleet supervisors (and the benchmark harness)
    # can learn the OS-assigned port before the accept loop blocks.
    print(
        f"SERVING {host}:{port} kind={server.kind} "
        f"shards={max(len(server.shard_starts), 1)} "
        f"owned={','.join(map(str, server.owned))} "
        f"epoch={server.epoch} strict={int(server.strict)} "
        f"concurrency={server.max_concurrency} queue={server.max_queue} "
        f"cache={server.cache.max_entries if server.cache is not None else 'off'}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _fleet_request(worker_id: str, payload: dict, timeout: float = 10.0) -> dict:
    """One wire round trip to ``host:port``-identified fleet worker."""
    import socket

    from repro.serving import wire

    host, sep, port = worker_id.rpartition(":")
    if not sep:
        raise ReproError(f"worker id {worker_id!r} is not host:port")
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    try:
        return wire.request(sock, payload)
    finally:
        sock.close()


def _cmd_rebalance(args: argparse.Namespace) -> int:
    """Elastic rebalancing: spawn, hand over shards, flip epoch, drain.

    Sequence (§ Failure model in ARCHITECTURE.md):

    1. read the source worker's ownership + the fleet's membership view;
    2. spawn a fresh ``repro serve`` worker over the same snapshot with
       the moving shard slice (its own session, so it outlives this CLI);
    3. announce the join to every fleet member (epoch bump) so strict
       workers accept the new routes and clients can discover the worker;
    4. announce the source worker's leave — it drains: in-flight buckets
       complete, new non-owned buckets are answered ``not_owner``.
    """
    from repro.serving.remote import parse_addresses

    ((src_host, src_port),) = parse_addresses(args.source)
    source_id = f"{src_host}:{src_port}"
    hello = _fleet_request(source_id, {"op": "hello"})
    if "error" in hello:
        raise ReproError(f"source worker rejected hello: {hello['error']}")
    source_id = hello.get("worker") or source_id
    view = _fleet_request(source_id, {"op": "membership"})
    if "error" in view:
        raise ReproError(f"source worker has no membership: {view['error']}")
    epoch = int(view.get("epoch", hello.get("epoch", 0)))
    members = view.get("members", {})

    if args.owned:
        owned = sorted({int(x) for x in args.owned.split(",") if x.strip()})
    else:
        owned = [int(i) for i in hello.get("owned", [])]
    if not owned:
        raise ReproError(
            f"source worker {source_id} owns no shards; nothing to move"
        )

    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        args.index,
        "--engine",
        args.engine,
        "--host",
        args.host,
        "--port",
        str(args.port),
        "--owned",
        ",".join(map(str, owned)),
        "--epoch",
        str(epoch + 1),
    ]
    if args.strict:
        cmd.append("--strict")
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        start_new_session=True,  # the worker outlives this CLI invocation
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("SERVING "):
        proc.terminate()
        raise ReproError(
            f"spawned worker failed to announce itself (got {line!r})"
        )
    new_id = line.split()[1]

    fleet = sorted(set(members) | {source_id, new_id})
    join_epoch = epoch + 1
    leave_epoch = epoch + 2
    for worker_id in fleet:
        try:
            _fleet_request(
                worker_id,
                {"op": "join", "worker": new_id, "owned": owned,
                 "epoch": join_epoch},
            )
            _fleet_request(
                worker_id,
                {"op": "leave", "worker": source_id, "epoch": leave_epoch},
            )
        except (OSError, ReproError):
            # A dead fleet member learns the new map when it refreshes;
            # rebalancing must not abort halfway through the announce.
            continue
    if args.stop_source:
        try:
            _fleet_request(source_id, {"op": "shutdown"})
        except (OSError, ReproError):
            pass
    print(
        f"REBALANCED {source_id} -> {new_id} "
        f"shards={','.join(map(str, owned))} epoch={leave_epoch} "
        f"pid={proc.pid} "
        f"source={'stopped' if args.stop_source else 'draining'}",
        flush=True,
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    row = _serve_bench_once(
        args.index, args.engine, args.queries, args.seed, remote=args.remote
    )
    if args.json:
        print(json.dumps(row))
        return 0
    private = row.get("private_kib") or row.get("rss_kib")
    rss = f"{private / 1024:.1f} MiB" if private else "n/a"
    print(
        f"engine={row['engine']} load={row['load_seconds'] * 1000:.1f}ms "
        f"batch={row['queries']} queries at {row['qps']:,.0f} qps "
        f"private-rss={rss}"
    )
    if args.workers > 0:
        # Deliberate whole-environment copy for worker subprocesses.
        env = dict(os.environ)  # repro-lint: disable=env-discipline
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "serve-bench",
                    args.index,
                    "--engine",
                    args.engine,
                    "--queries",
                    str(args.queries),
                    "--seed",
                    str(args.seed + i + 1),
                    "--json",
                ]
                + (["--remote", args.remote] if args.remote else []),
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            for i in range(args.workers)
        ]
        rows = []
        for proc in procs:
            out, _ = proc.communicate()
            if proc.returncode != 0:
                print(f"worker failed with exit code {proc.returncode}")
                return 1
            rows.append(json.loads(out.strip().splitlines()[-1]))
        total_qps = sum(r["qps"] for r in rows)
        rss_list = [
            r.get("private_kib") or r.get("rss_kib")
            for r in rows
            if r.get("private_kib") or r.get("rss_kib")
        ]
        rss_txt = (
            f"{sum(rss_list) / len(rss_list) / 1024:.1f} MiB avg"
            if rss_list
            else "n/a"
        )
        print(
            f"workers={args.workers} aggregate={total_qps:,.0f} qps "
            f"worker-private-rss={rss_txt}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    if getattr(args, "verbose", False):
        from repro.core.analysis import describe_index

        print(describe_index(index))
        return 0
    st = index.stats
    sigma = "-" if st.sigma is None else f"{st.sigma:.2f}"
    rows = [
        ("k", st.k),
        ("sigma", sigma),
        ("vertices", st.num_vertices),
        ("edges", st.num_edges),
        ("G_k vertices", st.gk_vertices),
        ("G_k edges", st.gk_edges),
        ("label entries", st.label_entries),
        ("label bytes", human_bytes(st.label_bytes)),
        ("avg entries/vertex", f"{st.avg_label_entries:.2f}"),
    ]
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"{name.ljust(width)}  {value}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, args.scale)
    write_edge_list(graph, args.output)
    st = graph_stats(graph)
    print(
        f"wrote {args.output}: |V|={st.num_vertices}, |E|={st.num_edges}, "
        f"avg deg {st.avg_degree:.2f}, max deg {st.max_degree}"
    )
    return 0


def _cmd_fleet_stats(args: argparse.Namespace) -> int:
    """One ``stats`` round trip to a fleet worker, printed as JSON.

    The operator-facing emitter of the wire ``stats`` op: serving depth,
    admission counters and cache hit rates of a live worker, without
    attaching a remote engine to the fleet.
    """
    response = _fleet_request(
        args.worker, {"op": "stats"}, timeout=args.timeout
    )
    if "error" in response:
        raise ReproError(
            f"worker {args.worker} rejected stats: {response['error']}"
        )
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import available_rules, run_analysis

    if args.list_rules:
        for rule_id, description in sorted(available_rules().items()):
            print(f"{rule_id}: {description}")
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(available_rules()))
        if unknown:
            raise ReproError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(repro analyze --list-rules shows the registry)"
            )
    report = run_analysis(args.paths, rules=rules)
    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_example(_: argparse.Namespace) -> int:
    from repro.workloads.paper_example import render_walkthrough

    print(render_walkthrough())
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import SCENARIOS, get_scenario, run_scenario, scenario_names

    if args.list:
        for name in scenario_names():
            print(f"{name:14s} {SCENARIOS[name].description}")
        return 0
    if not args.scenario:
        raise ReproError(
            "scenario name required (repro loadgen --list shows them)"
        )
    scenario = get_scenario(args.scenario)
    overrides = {}
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.replace(**overrides)
    result = run_scenario(scenario, artifact_path=args.output, progress=print)
    reads = result["reads"]
    reaped = result.get("workers_reaped", True)
    print(
        f"LOADGEN {scenario.name} engine={scenario.engine} "
        f"ops={result['operations']} "
        f"bit_identical={result['bit_identical']} "
        f"p50={reads['p50_ms']:.3f}ms p99={reads['p99_ms']:.3f}ms "
        f"qps={reads['throughput_qps']:,.0f} reaped={reaped}"
    )
    return 0 if result["bit_identical"] and reaped else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "query": _cmd_query,
        "build-directed": _cmd_build_directed,
        "query-directed": _cmd_query_directed,
        "snapshot": _cmd_snapshot,
        "serve": _cmd_serve,
        "rebalance": _cmd_rebalance,
        "serve-bench": _cmd_serve_bench,
        "stats": _cmd_stats,
        "dataset": _cmd_dataset,
        "loadgen": _cmd_loadgen,
        "fleet-stats": _cmd_fleet_stats,
        "analyze": _cmd_analyze,
        "example": _cmd_example,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
