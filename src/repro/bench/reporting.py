"""Plain-text table rendering for benchmark output.

Every benchmark prints an aligned table mirroring one of the paper's
tables, with a paper-reference column next to each measured column, and
appends the rendered table to ``benchmarks/results/`` so EXPERIMENTS.md can
be assembled from real runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.envvars import read_env_str

__all__ = ["render_table", "emit", "results_dir", "fmt_ms", "fmt_bytes", "fmt_count"]

Cell = Union[str, int, float, None]


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
) -> str:
    """Render an aligned monospace table with a title rule."""
    cells = [[_to_str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def results_dir() -> Path:
    """Where rendered benchmark tables are saved (created on demand)."""
    override = read_env_str("REPRO_RESULTS_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit(name: str, table: str) -> None:
    """Print a table and persist it under ``benchmarks/results/<name>.txt``."""
    print("\n" + table + "\n")
    (results_dir() / f"{name}.txt").write_text(table + "\n", encoding="utf-8")


def fmt_ms(value: Optional[float]) -> str:
    """Milliseconds with adaptive precision (paper style)."""
    if value is None:
        return "-"
    if value < 0.01:
        return f"{value:.4f}"
    return f"{value:.2f}"


def fmt_bytes(num: Optional[float]) -> str:
    if num is None:
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num) < 1024.0 or unit == "GB":
            return f"{int(num)} {unit}" if unit == "B" else f"{num:.1f} {unit}"
        num /= 1024.0
    raise AssertionError("unreachable")


def fmt_count(value: Optional[Union[int, float]]) -> str:
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.0f}K"
    return str(value)


def _to_str(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
