"""Benchmark harness: experiment drivers, paper constants, reporting."""

from repro.bench.harness import (
    DEFAULT_QUERY_COUNT,
    WorkloadSummary,
    built_index,
    built_vc_index,
    run_query_workload,
    time_im_dij,
)
from repro.bench.reporting import emit, fmt_bytes, fmt_count, fmt_ms, render_table

__all__ = [
    "WorkloadSummary",
    "built_index",
    "built_vc_index",
    "run_query_workload",
    "time_im_dij",
    "DEFAULT_QUERY_COUNT",
    "render_table",
    "emit",
    "fmt_ms",
    "fmt_bytes",
    "fmt_count",
]
