"""Experiment driver shared by all benchmarks.

Builds indexes per dataset (cached per process — several tables reuse the
σ = 0.95 build), runs query workloads, and aggregates the per-query cost
split (Time (a) = simulated label I/O at the paper's 10 ms/IO benchmark;
Time (b) = measured search CPU) exactly as Tables 4, 5 and 8 report it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.dijkstra import bidirectional_dijkstra
from repro.baselines.vc_index import VCIndex
from repro.core.index import ISLabelIndex
from repro.graph.graph import Graph
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import random_query_pairs

__all__ = [
    "WorkloadSummary",
    "built_index",
    "built_vc_index",
    "run_query_workload",
    "time_im_dij",
    "process_rss_kib",
    "DEFAULT_QUERY_COUNT",
]

DEFAULT_QUERY_COUNT = 1000


def process_rss_kib() -> Tuple[Optional[int], Optional[int]]:
    """``(VmRSS, RssAnon)`` of this process in KiB (Linux), else Nones.

    The shared measurement behind ``repro serve-bench`` and
    ``benchmarks/bench_snapshot_serving.py``.  ``RssAnon`` is the honest
    per-worker cost of a served index: mmap-backed label pages are
    file-backed and shared through the page cache, so they inflate
    ``VmRSS`` without costing extra memory, while a stream-loaded index
    is all private anonymous heap.
    """
    vm = anon = None
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    vm = int(line.split()[1])
                elif line.startswith("RssAnon:"):
                    anon = int(line.split()[1])
    except OSError:
        pass
    return vm, anon


@dataclass(frozen=True)
class WorkloadSummary:
    """Aggregate of one query workload (all times in milliseconds)."""

    queries: int
    avg_total_ms: float
    avg_time_a_ms: float
    avg_time_b_ms: float
    avg_label_ios: float
    type_counts: Tuple[int, int, int]

    @staticmethod
    def aggregate(results) -> "WorkloadSummary":
        n = len(results)
        type_counts = [0, 0, 0]
        for r in results:
            type_counts[r.query_type - 1] += 1
        return WorkloadSummary(
            queries=n,
            avg_total_ms=1000.0 * sum(r.total_time_s for r in results) / n,
            avg_time_a_ms=1000.0 * sum(r.time_label_s for r in results) / n,
            avg_time_b_ms=1000.0 * sum(r.time_search_s for r in results) / n,
            avg_label_ios=sum(r.label_ios for r in results) / n,
            type_counts=tuple(type_counts),
        )


@lru_cache(maxsize=64)
def built_index(
    dataset: str,
    sigma: Optional[float] = 0.95,
    k: Optional[int] = None,
    storage: str = "disk",
    scale: float = 1.0,
    engine: str = "fast",
) -> ISLabelIndex:
    """Build (once per process) an IS-LABEL index for a dataset stand-in."""
    graph = load_dataset(dataset, scale)
    return ISLabelIndex.build(graph, sigma=sigma, k=k, storage=storage, engine=engine)


@lru_cache(maxsize=16)
def built_vc_index(dataset: str, sigma: float = 0.95, scale: float = 1.0) -> VCIndex:
    """Build (once per process) the VC-Index comparator."""
    return VCIndex.build(load_dataset(dataset, scale), sigma=sigma)


def run_query_workload(
    index: ISLabelIndex,
    pairs: Sequence[Tuple[int, int]],
) -> WorkloadSummary:
    """Run all query pairs through :meth:`ISLabelIndex.query` and aggregate."""
    results = [index.query(s, t) for s, t in pairs]
    return WorkloadSummary.aggregate(results)


def time_im_dij(graph: Graph, pairs: Sequence[Tuple[int, int]]) -> float:
    """Average IM-DIJ (bidirectional Dijkstra) query time in ms."""
    started = time.perf_counter()
    for s, t in pairs:
        bidirectional_dijkstra(graph, s, t)
    return 1000.0 * (time.perf_counter() - started) / len(pairs)
