"""The paper's published evaluation numbers (Tables 2–9), transcribed.

Benchmarks print these next to measured values so every run is a direct
paper-vs-measured comparison.  All times are as published: an Intel 3.3 GHz
CPU, 4 GB RAM, 7200-RPM SATA disk (~10 ms per random I/O), C++.
"""

from __future__ import annotations

__all__ = [
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "TABLE7",
    "TABLE8",
    "TABLE9",
    "DATASET_ORDER",
]

DATASET_ORDER = ("btc", "web", "skitter", "wikitalk", "google")

#: |V|, |E|, average degree, max degree, on-disk size.
TABLE2 = {
    "btc": (164_700_000, 361_100_000, 2.19, 105_618, "5.6 GB"),
    "web": (6_900_000, 113_000_000, 16.40, 31_734, "1.1 GB"),
    "skitter": (1_700_000, 22_200_000, 13.08, 35_455, "200 MB"),
    "wikitalk": (2_400_000, 9_300_000, 3.89, 100_029, "100 MB"),
    "google": (900_000, 8_600_000, 9.87, 6_332, "80 MB"),
}

#: k, |V_Gk|, |E_Gk|, label size, indexing seconds — threshold σ = 0.95.
TABLE3 = {
    "btc": (6, 134_000, 16_400_000, "10.6 GB", 2513.73),
    "web": (19, 242_000, 14_500_000, "13.1 GB", 2274.36),
    "skitter": (6, 86_000, 8_500_000, "678.3 MB", 483.65),
    "wikitalk": (5, 14_000, 2_400_000, "152.5 MB", 239.48),
    "google": (7, 87_000, 2_500_000, "199.5 MB", 35.13),
}

#: total query ms, Time (a) ms (label I/O), Time (b) ms (bi-Dijkstra).
TABLE4 = {
    "btc": (11.55, 11.47, 0.08),
    "web": (28.02, 20.08, 7.94),
    "skitter": (20.05, 12.68, 7.37),
    "wikitalk": (12.22, 10.85, 1.37),
    "google": (12.97, 10.37, 2.60),
}

#: per query type: total ms, Time (a) ms, Time (b) ms.
TABLE5 = {
    "btc": {1: (0.08, 0.0, 0.08), 2: (5.85, 5.73, 0.12), 3: (9.03, 8.94, 0.09)},
    "web": {1: (10.40, 0.0, 10.40), 2: (19.61, 10.14, 9.47), 3: (29.81, 20.37, 9.44)},
}

#: k sweep: k -> (|V_Gk|, |E_Gk|, label size, indexing s, query ms).
TABLE6 = {
    "btc": {
        5: (167_000, 17_200_000, "7.2 GB", 1555.24, 10.45),
        6: (134_000, 16_400_000, "10.6 GB", 2513.73, 11.55),
        7: (114_000, 15_800_000, "17.1 GB", 7227.40, 12.37),
    },
    "web": {
        18: (260_000, 15_200_000, "12.2 GB", 2115.31, 30.72),
        19: (242_000, 14_500_000, "13.1 GB", 2274.36, 28.02),
        20: (226_000, 13_800_000, "13.9 GB", 2485.24, 33.65),
    },
}

#: threshold σ = 0.90: k, |V_Gk|, |E_Gk|, label size, indexing s, query ms.
TABLE7 = {
    "btc": (5, 167_000, 17_200_000, "7.2 GB", 1818.21, 10.64),
    "web": (7, 808_000, 31_100_000, "1.6 GB", 752.69, 40.85),
    "skitter": (4, 160_000, 9_300_000, "221.9 MB", 246.69, 18.98),
    "wikitalk": (4, 17_000, 2_400_000, "99.3 MB", 182.32, 11.38),
    "google": (6, 107_000, 2_700_000, "127.3 MB", 25.57, 12.96),
}

#: query ms: IS-LABEL, IM-ISL (in-memory), VC-Index (P2P), IM-DIJ.
#: None = the paper could not run that configuration ("–").
TABLE8 = {
    "btc": (11.55, None, 4246.09, None),
    "web": (28.02, None, 31655.77, 430.67),
    "skitter": (20.05, 7.15, 3712.33, 23.16),
    "wikitalk": (12.22, 1.23, 553.94, 9.97),
    "google": (12.97, 2.44, 1285.25, 9.09),
}

#: VC-Index: construction seconds, index size.
TABLE9 = {
    "btc": (6221.44, "3.1 GB"),
    "web": (3544.38, "3.0 GB"),
    "skitter": (1013.07, "486.5 MB"),
    "wikitalk": (52.79, "137.1 MB"),
    "google": (70.37, "211.3 MB"),
}
