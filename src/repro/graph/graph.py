"""Weighted, undirected simple graphs (the paper's input model, §2).

The paper works with ``G = (V_G, E_G, ω_G)`` where ``ω_G`` maps each edge to
a positive integer.  This module provides :class:`Graph`, a mutable
adjacency-map implementation tuned for the operations IS-LABEL construction
needs: vertex removal (peeling an independent set), neighbourhood iteration
(the 2-hop self join of Algorithm 3), and min-merging of parallel edge
weights (augmenting edges).

Vertices are integers.  Edges are stored symmetrically, so mutating helpers
keep the invariant ``v in adj[u] iff u in adj[v]`` with equal weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.errors import GraphError

__all__ = ["Graph"]

Edge = Tuple[int, int, int]


class Graph:
    """A weighted, undirected simple graph with integer vertices.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, w)`` or ``(u, v)`` tuples; missing
        weights default to 1.  Duplicate edges keep the *minimum* weight,
        which is the merge rule used throughout the paper.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3, 5)])
    >>> g.weight(2, 3)
    5
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Tuple[int, ...]] = ()) -> None:
        self._adj: Dict[int, Dict[int, int]] = {}
        self._num_edges = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.merge_edge(u, v, 1)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.merge_edge(u, v, w)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add edge ``(u, v)``, overwriting any existing weight.

        Raises
        ------
        GraphError
            For self loops or non-positive/non-integer weights (the paper
            requires ``ω: E → N+``).
        """
        self._check_edge(u, v, weight)
        was_present = v in self._adj.get(u, ())
        self._adj.setdefault(u, {})[v] = weight
        self._adj.setdefault(v, {})[u] = weight
        if not was_present:
            self._num_edges += 1

    def merge_edge(self, u: int, v: int, weight: int = 1) -> bool:
        """Add edge ``(u, v)`` keeping the minimum weight if it exists.

        This is the augmenting-edge merge rule of Algorithm 3 (§6.1.2):
        ``ω(u, w) = min(ω_old(u, w), ω_new(u, w))``.

        Returns
        -------
        bool
            True if the edge was inserted or its weight decreased.
        """
        self._check_edge(u, v, weight)
        row = self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        old = row.get(v)
        if old is None:
            row[v] = weight
            self._adj[v][u] = weight
            self._num_edges += 1
            return True
        if weight < old:
            row[v] = weight
            self._adj[v][u] = weight
            return True
        return False

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; raises :class:`GraphError` if absent."""
        try:
            del self._adj[u][v]
            del self._adj[v][u]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) not in graph") from None
        self._num_edges -= 1

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` and all incident edges (used when peeling ``L_i``)."""
        try:
            incident = self._adj.pop(v)
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None
        for u in incident:
            del self._adj[u][v]
        self._num_edges -= len(incident)

    def remove_vertices(self, vertices: Iterable[int]) -> None:
        """Remove a batch of vertices (order-independent)."""
        for v in vertices:
            self.remove_vertex(v)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, ())

    def weight(self, u: int, v: int) -> int:
        """Weight of edge ``(u, v)``; raises :class:`GraphError` if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) not in graph") from None

    def neighbors(self, v: int) -> Mapping[int, int]:
        """Read-only view of ``adj_G(v)`` as a ``{neighbor: weight}`` map."""
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None

    def degree(self, v: int) -> int:
        """``deg_G(v) = |adj_G(v)|`` (§2)."""
        return len(self.neighbors(v))

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over ``(u, v, w)`` with ``u < v`` (each edge once)."""
        for u, row in self._adj.items():
            for v, w in row.items():
                if u < v:
                    yield (u, v, w)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G| = |V_G| + |E_G|`` — the paper's graph-size measure (§2)."""
        return self.num_vertices + self.num_edges

    def total_degree(self) -> int:
        return 2 * self._num_edges

    def __contains__(self, v: object) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy (adjacency maps are duplicated)."""
        g = Graph()
        g._adj = {u: dict(row) for u, row in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def induced_subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Subgraph induced by ``vertices`` (edges with both ends kept)."""
        keep = set(vertices)
        g = Graph()
        for v in keep:
            if v not in self._adj:
                raise GraphError(f"vertex {v} not in graph")
            g.add_vertex(v)
        for v in keep:
            for u, w in self._adj[v].items():
                if u in keep and v < u:
                    g.add_edge(v, u, w)
        return g

    def relabeled(self) -> Tuple["Graph", Dict[int, int]]:
        """Return a copy with vertices renumbered ``0..n-1``.

        Returns the new graph and the ``old id -> new id`` mapping.  Useful
        before converting to CSR or writing compact binary formats.
        """
        mapping = {v: i for i, v in enumerate(sorted(self._adj))}
        g = Graph()
        for v in self._adj:
            g.add_vertex(mapping[v])
        for u, v, w in self.edges():
            g.add_edge(mapping[u], mapping[v], w)
        return g, mapping

    def sorted_vertices(self) -> List[int]:
        """Vertex ids in ascending order (the paper's storage order, §2)."""
        return sorted(self._adj)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_edge(u: int, v: int, weight: int) -> None:
        if u == v:
            raise GraphError(f"self loop ({u}, {v}) not allowed in a simple graph")
        if not isinstance(weight, int) or isinstance(weight, bool) or weight <= 0:
            raise GraphError(
                f"edge ({u}, {v}) weight must be a positive integer, got {weight!r}"
            )
