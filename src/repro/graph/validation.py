"""Structural validation for graphs.

The paper's model (§2) requires weighted, undirected *simple* graphs with
positive integer weights.  :class:`Graph` enforces most of that at mutation
time; :func:`validate_graph` re-checks the full invariant set so tests and
loaders can assert integrity after deserialization or generation.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ValidationError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = ["validate_graph", "validate_digraph"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`ValidationError` unless ``graph`` is a valid input.

    Checks: symmetric adjacency with equal weights, no self loops, positive
    integer weights, and an edge count consistent with the adjacency maps.
    """
    seen_slots = 0
    for v in graph.vertices():
        for u, w in graph.neighbors(v).items():
            seen_slots += 1
            if u == v:
                raise ValidationError(f"self loop at vertex {v}")
            _check_weight(u, v, w)
            if not graph.has_edge(u, v) or graph.weight(u, v) != w:
                raise ValidationError(f"asymmetric edge ({v}, {u})")
    if seen_slots != 2 * graph.num_edges:
        raise ValidationError(
            f"edge count {graph.num_edges} inconsistent with "
            f"{seen_slots} adjacency slots"
        )


def validate_digraph(graph: DiGraph) -> None:
    """Raise :class:`ValidationError` unless ``graph`` is a valid digraph."""
    arcs = 0
    for v in graph.vertices():
        for u, w in graph.successors(v).items():
            arcs += 1
            if u == v:
                raise ValidationError(f"self loop at vertex {v}")
            _check_weight(v, u, w)
            if graph.predecessors(u).get(v) != w:
                raise ValidationError(f"successor/predecessor mismatch on ({v}, {u})")
    if arcs != graph.num_edges:
        raise ValidationError(
            f"arc count {graph.num_edges} inconsistent with {arcs} successor slots"
        )


def _check_weight(u: int, v: int, w: Union[int, object]) -> None:
    if not isinstance(w, int) or isinstance(w, bool) or w <= 0:
        raise ValidationError(
            f"edge ({u}, {v}) has non-positive-integer weight {w!r}"
        )
