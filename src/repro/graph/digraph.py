"""Weighted directed simple graphs (for the §8.2 directed extension).

:class:`DiGraph` mirrors :class:`repro.graph.graph.Graph` but keeps separate
successor and predecessor maps so that the directed labeling can walk both
out-edges (for out-labels) and in-edges (for in-labels) efficiently.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Set, Tuple

from repro.errors import GraphError

__all__ = ["DiGraph"]

Edge = Tuple[int, int, int]


class DiGraph:
    """A weighted directed simple graph with integer vertices.

    Duplicate arcs keep the minimum weight, matching the undirected
    :meth:`Graph.merge_edge` convention.
    """

    __slots__ = ("_succ", "_pred", "_num_edges")

    def __init__(self, edges: Iterable[Tuple[int, ...]] = ()) -> None:
        self._succ: Dict[int, Dict[int, int]] = {}
        self._pred: Dict[int, Dict[int, int]] = {}
        self._num_edges = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.merge_edge(u, v, 1)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.merge_edge(u, v, w)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        if v not in self._succ:
            self._succ[v] = {}
            self._pred[v] = {}

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add arc ``u -> v`` overwriting any existing weight."""
        self._check_edge(u, v, weight)
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._succ[u]:
            self._num_edges += 1
        self._succ[u][v] = weight
        self._pred[v][u] = weight

    def merge_edge(self, u: int, v: int, weight: int = 1) -> bool:
        """Add arc ``u -> v`` keeping the minimum weight; True on change."""
        self._check_edge(u, v, weight)
        self.add_vertex(u)
        self.add_vertex(v)
        old = self._succ[u].get(v)
        if old is None or weight < old:
            if old is None:
                self._num_edges += 1
            self._succ[u][v] = weight
            self._pred[v][u] = weight
            return True
        return False

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` with all incident arcs."""
        if v not in self._succ:
            raise GraphError(f"vertex {v} not in graph")
        for w in self._succ.pop(v):
            del self._pred[w][v]
            self._num_edges -= 1
        for u in self._pred.pop(v):
            del self._succ[u][v]
            self._num_edges -= 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def has_vertex(self, v: int) -> bool:
        return v in self._succ

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._succ.get(u, ())

    def weight(self, u: int, v: int) -> int:
        try:
            return self._succ[u][v]
        except KeyError:
            raise GraphError(f"arc ({u}, {v}) not in graph") from None

    def successors(self, v: int) -> Mapping[int, int]:
        """Out-neighbours as a ``{head: weight}`` view."""
        try:
            return self._succ[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None

    def predecessors(self, v: int) -> Mapping[int, int]:
        """In-neighbours as a ``{tail: weight}`` view."""
        try:
            return self._pred[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None

    def out_degree(self, v: int) -> int:
        return len(self.successors(v))

    def in_degree(self, v: int) -> int:
        return len(self.predecessors(v))

    def undirected_neighbors(self, v: int) -> Set[int]:
        """Neighbours ignoring direction — §8.2 computes independent sets
        "by simply ignoring the direction of the edges"."""
        return set(self.successors(v)) | set(self.predecessors(v))

    def undirected_degree(self, v: int) -> int:
        return len(self.undirected_neighbors(v))

    def vertices(self) -> Iterator[int]:
        return iter(self._succ)

    def edges(self) -> Iterator[Edge]:
        """Iterate over arcs as ``(u, v, w)``."""
        for u, row in self._succ.items():
            for v, w in row.items():
                yield (u, v, w)

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G| = |V_G| + |E_G|``."""
        return self.num_vertices + self.num_edges

    def __contains__(self, v: object) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[int]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def copy(self) -> "DiGraph":
        g = DiGraph()
        g._succ = {u: dict(row) for u, row in self._succ.items()}
        g._pred = {u: dict(row) for u, row in self._pred.items()}
        g._num_edges = self._num_edges
        return g

    def reversed(self) -> "DiGraph":
        """Graph with every arc flipped (used to label in-ancestors)."""
        g = DiGraph()
        g._succ = {u: dict(row) for u, row in self._pred.items()}
        g._pred = {u: dict(row) for u, row in self._succ.items()}
        g._num_edges = self._num_edges
        return g

    @staticmethod
    def _check_edge(u: int, v: int, weight: int) -> None:
        if u == v:
            raise GraphError(f"self loop ({u}, {v}) not allowed in a simple graph")
        if not isinstance(weight, int) or isinstance(weight, bool) or weight <= 0:
            raise GraphError(
                f"arc ({u}, {v}) weight must be a positive integer, got {weight!r}"
            )
