"""Synthetic graph generators.

The paper evaluates on five real graphs (Table 2): BTC (RDF), UK Web,
as-Skitter (internet topology), wiki-Talk (communication), and web-Google.
Those datasets are not redistributable here, so ``repro.workloads.datasets``
builds *scaled stand-ins* from the families below, chosen to match each
original's average degree and degree skew.  All generators are seeded and
deterministic, return simple undirected :class:`Graph` instances with
positive integer weights, and are independently useful for tests.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.components import connected_components
from repro.graph.graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "rmat",
    "powerlaw_configuration",
    "random_tree",
    "attach_forest",
    "attach_hubs",
    "attach_chains",
    "attach_trees",
    "overlay_random_edges",
    "ensure_connected",
    "random_weights",
]

WeightFn = Callable[[random.Random, int, int], int]


# ----------------------------------------------------------------------
# Deterministic structured graphs (test fixtures and road-like inputs)
# ----------------------------------------------------------------------
def path_graph(n: int, weight: int = 1) -> Graph:
    """Path ``0 - 1 - ... - n-1`` with uniform edge weight."""
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1, weight)
    return g


def cycle_graph(n: int, weight: int = 1) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError("cycle needs at least 3 vertices")
    g = path_graph(n, weight)
    g.add_edge(n - 1, 0, weight)
    return g


def complete_graph(n: int, weight: int = 1) -> Graph:
    """Complete graph ``K_n``."""
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, weight)
    return g


def star_graph(n_leaves: int, weight: int = 1) -> Graph:
    """Star: centre 0 joined to leaves ``1..n_leaves``."""
    g = Graph()
    g.add_vertex(0)
    for v in range(1, n_leaves + 1):
        g.add_edge(0, v, weight)
    return g


def grid_graph(
    rows: int,
    cols: int,
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """``rows x cols`` grid — a road-network-like input.

    With ``max_weight > 1`` edge weights are drawn uniformly from
    ``1..max_weight`` (seeded), mimicking road segment lengths.
    """
    rng = random.Random(seed)
    g = Graph()

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            g.add_vertex(vid(r, c))
    for r in range(rows):
        for c in range(cols):
            w = rng.randint(1, max_weight) if max_weight > 1 else 1
            if c + 1 < cols:
                g.add_edge(vid(r, c), vid(r, c + 1), w)
            w = rng.randint(1, max_weight) if max_weight > 1 else 1
            if r + 1 < rows:
                g.add_edge(vid(r, c), vid(r + 1, c), w)
    return g


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------
def erdos_renyi(
    n: int,
    num_edges: int,
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """G(n, m): exactly ``num_edges`` distinct uniform random edges."""
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges in a {n}-vertex simple graph")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    placed = 0
    while placed < num_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        w = rng.randint(1, max_weight) if max_weight > 1 else 1
        g.add_edge(u, v, w)
        placed += 1
    return g


def barabasi_albert(
    n: int,
    m_attach: int,
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """Preferential attachment (the as-Skitter-like family).

    Each new vertex attaches to ``m_attach`` distinct existing vertices
    sampled proportionally to degree, yielding a power-law degree tail.
    """
    if m_attach < 1 or n <= m_attach:
        raise GraphError("need n > m_attach >= 1")
    rng = random.Random(seed)
    g = Graph()
    # Seed clique-ish core: a path over the first m_attach + 1 vertices.
    for v in range(m_attach + 1):
        g.add_vertex(v)
    repeated: List[int] = []  # vertex id repeated once per incident edge end
    for v in range(m_attach):
        g.add_edge(v, v + 1)
        repeated += [v, v + 1]
    for v in range(m_attach + 1, n):
        targets: set = set()
        while len(targets) < m_attach:
            # Mix preferential and uniform choices to avoid rare stalls.
            if repeated and rng.random() < 0.9:
                targets.add(rng.choice(repeated))
            else:
                candidate = rng.randrange(v)
                targets.add(candidate)
        g.add_vertex(v)
        for t in targets:
            w = rng.randint(1, max_weight) if max_weight > 1 else 1
            g.add_edge(v, t, w)
            repeated += [v, t]
    return g


def powerlaw_cluster(
    n: int,
    m_attach: int,
    p_triangle: float,
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering (web-like).

    Like :func:`barabasi_albert` but after each preferential attachment,
    with probability ``p_triangle`` the next link closes a triangle by
    attaching to a random neighbour of the previous target.
    """
    if not 0.0 <= p_triangle <= 1.0:
        raise GraphError("p_triangle must be within [0, 1]")
    if m_attach < 1 or n <= m_attach:
        raise GraphError("need n > m_attach >= 1")
    rng = random.Random(seed)
    g = Graph()
    for v in range(m_attach + 1):
        g.add_vertex(v)
    repeated: List[int] = []
    for v in range(m_attach):
        g.add_edge(v, v + 1)
        repeated += [v, v + 1]
    for v in range(m_attach + 1, n):
        g.add_vertex(v)
        links = 0
        last_target: Optional[int] = None
        guard = 0
        while links < m_attach and guard < 50 * m_attach:
            guard += 1
            if (
                last_target is not None
                and rng.random() < p_triangle
                and g.degree(last_target) > 0
            ):
                candidate = rng.choice(list(g.neighbors(last_target)))
            elif repeated:
                candidate = rng.choice(repeated)
            else:
                candidate = rng.randrange(v)
            if candidate == v or g.has_edge(v, candidate):
                continue
            w = rng.randint(1, max_weight) if max_weight > 1 else 1
            g.add_edge(v, candidate, w)
            repeated += [v, candidate]
            last_target = candidate
            links += 1
    return g


def watts_strogatz(
    n: int,
    k: int,
    p_rewire: float,
    seed: Optional[int] = None,
) -> Graph:
    """Small-world ring lattice with rewiring (clustering + short paths)."""
    if k % 2 or k <= 0 or k >= n:
        raise GraphError("k must be even with 0 < k < n")
    rng = random.Random(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u = (v + j) % n
            if not g.has_edge(v, u):
                g.add_edge(v, u)
    # Rewire each lattice edge with probability p.
    for u, v, _ in list(g.edges()):
        if rng.random() < p_rewire:
            candidates = [x for x in (rng.randrange(n) for _ in range(8))]
            for new_v in candidates:
                if new_v != u and not g.has_edge(u, new_v):
                    g.remove_edge(u, v)
                    g.add_edge(u, new_v)
                    break
    return g


def rmat(
    scale: int,
    edge_factor: int = 8,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: Optional[int] = None,
    max_weight: int = 1,
) -> Graph:
    """Recursive-matrix (R-MAT/Kronecker) graph — the Graph500 generator.

    Produces ``2^scale`` vertex slots and about ``edge_factor * 2^scale``
    edges by recursively descending into adjacency-matrix quadrants with
    the given probabilities; self loops and duplicates are dropped.  R-MAT
    graphs exhibit the skew and community structure of social/Web graphs
    and are a standard stress input for graph indexes.
    """
    a, b, c, d = probabilities
    if abs(a + b + c + d - 1.0) > 1e-9 or min(probabilities) < 0:
        raise GraphError("R-MAT probabilities must be non-negative and sum to 1")
    if scale < 1:
        raise GraphError("scale must be at least 1")
    rng = random.Random(seed)
    n = 1 << scale
    g = Graph()
    target_edges = edge_factor * n
    attempts = 0
    while g.num_edges < target_edges and attempts < 20 * target_edges:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v or g.has_edge(u, v):
            continue
        w = rng.randint(1, max_weight) if max_weight > 1 else 1
        g.add_edge(u, v, w)
    return g


def powerlaw_configuration(
    n: int,
    exponent: float,
    seed: Optional[int] = None,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
) -> Graph:
    """Configuration-model graph with a power-law degree sequence.

    Degrees are sampled from ``P(d) ∝ d^-exponent`` on
    ``[min_degree, max_degree]``; stubs are paired uniformly and self loops
    or duplicate edges are dropped (so realised degrees are approximate,
    like the RDF-style BTC graph with avg degree ~2.2 but 100k-degree hubs).
    """
    rng = random.Random(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, n // 10)
    # Inverse-CDF sampling over the discrete power law.
    weights = [d ** (-exponent) for d in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def sample_degree() -> int:
        r = rng.random()
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        return min_degree + lo

    degrees = [sample_degree() for _ in range(n)]
    if sum(degrees) % 2:
        degrees[rng.randrange(n)] += 1
    stubs: List[int] = []
    for v, d in enumerate(degrees):
        stubs += [v] * d
    rng.shuffle(stubs)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


# ----------------------------------------------------------------------
# Post-processing helpers
# ----------------------------------------------------------------------
def attach_hubs(
    graph: Graph,
    num_hubs: int,
    hub_degree: int,
    seed: Optional[int] = None,
) -> Graph:
    """Attach ``num_hubs`` high-degree hubs to random existing vertices.

    Models the extreme-degree vertices of wiki-Talk (max degree 100k at avg
    degree 3.9) and BTC.  Mutates and returns ``graph``.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if not vertices:
        raise GraphError("cannot attach hubs to an empty graph")
    next_id = vertices[-1] + 1
    for h in range(num_hubs):
        hub = next_id + h
        graph.add_vertex(hub)
        spokes = min(hub_degree, len(vertices))
        for v in rng.sample(vertices, spokes):
            graph.merge_edge(hub, v, 1)
    return graph


def random_tree(n: int, seed: Optional[int] = None, start_id: int = 0) -> Graph:
    """Uniform random recursive tree on ``n`` vertices.

    Vertex ``start_id + i`` attaches to a uniformly random earlier vertex.
    Trees peel level after level with no augmenting-edge growth (a leaf
    removal adds nothing; a degree-2 removal contracts a path), so they are
    the substrate behind deep vertex hierarchies — and a useful minimal
    fixture in tests.
    """
    if n < 1:
        raise GraphError("tree needs at least one vertex")
    rng = random.Random(seed)
    g = Graph()
    g.add_vertex(start_id)
    for i in range(1, n):
        g.add_edge(start_id + i, start_id + rng.randrange(i), 1)
    return g


def attach_forest(
    graph: Graph,
    total_vertices: int,
    num_trees: int,
    seed: Optional[int] = None,
) -> Graph:
    """Attach ``num_trees`` random trees totalling ``total_vertices``.

    Each tree's root is glued to a random existing vertex; models the deep
    site-structure periphery of Web-scale graphs.  Mutates and returns
    ``graph``.
    """
    rng = random.Random(seed)
    anchors = sorted(graph.vertices())
    if not anchors:
        raise GraphError("cannot attach a forest to an empty graph")
    next_id = anchors[-1] + 1
    per_tree = max(1, total_vertices // max(1, num_trees))
    remaining = total_vertices
    while remaining > 0:
        size = min(per_tree, remaining)
        tree = random_tree(size, seed=rng.randrange(2 ** 30), start_id=next_id)
        for u, v, w in tree.edges():
            graph.add_vertex(u)
            graph.add_vertex(v)
            graph.add_edge(u, v, w)
        if size == 1:
            graph.add_vertex(next_id)
        graph.merge_edge(rng.choice(anchors), next_id, 1)
        next_id += size
        remaining -= size
    return graph


def attach_chains(
    graph: Graph,
    num_chains: int,
    chain_length: int,
    seed: Optional[int] = None,
) -> Graph:
    """Attach ``num_chains`` paths of ``chain_length`` vertices to the graph.

    Chains model deep low-degree periphery (link trails in Web graphs,
    traceroute tails in topology graphs).  They peel one IS layer per
    halving, so they deepen the vertex hierarchy by ``~log2(chain_length)``
    levels.  Mutates and returns ``graph``.
    """
    rng = random.Random(seed)
    anchors = sorted(graph.vertices())
    if not anchors:
        raise GraphError("cannot attach chains to an empty graph")
    next_id = anchors[-1] + 1
    for _ in range(num_chains):
        previous = rng.choice(anchors)
        for _ in range(chain_length):
            graph.add_vertex(next_id)
            graph.merge_edge(previous, next_id, 1)
            previous = next_id
            next_id += 1
    return graph


def attach_trees(
    graph: Graph,
    num_trees: int,
    depth: int,
    branching: int,
    seed: Optional[int] = None,
) -> Graph:
    """Attach ``num_trees`` complete ``branching``-ary trees of ``depth``.

    Models site-structure periphery (pages within a site) in Web-like
    graphs.  Tree roots are glued to random existing vertices.  Mutates and
    returns ``graph``.
    """
    rng = random.Random(seed)
    anchors = sorted(graph.vertices())
    if not anchors:
        raise GraphError("cannot attach trees to an empty graph")
    next_id = anchors[-1] + 1
    for _ in range(num_trees):
        root = next_id
        graph.add_vertex(root)
        graph.merge_edge(rng.choice(anchors), root, 1)
        next_id += 1
        frontier = [root]
        for _ in range(depth):
            new_frontier = []
            for parent in frontier:
                for _ in range(branching):
                    graph.add_vertex(next_id)
                    graph.merge_edge(parent, next_id, 1)
                    new_frontier.append(next_id)
                    next_id += 1
            frontier = new_frontier
    return graph


def overlay_random_edges(
    graph: Graph,
    num_edges: int,
    seed: Optional[int] = None,
    max_weight: int = 1,
    among: Optional[Sequence[int]] = None,
) -> Graph:
    """Add ``num_edges`` uniform random edges among ``among`` (default all).

    Lifts the average degree of a generated topology without disturbing its
    periphery when ``among`` is restricted to core vertices.  Mutates and
    returns ``graph``.
    """
    rng = random.Random(seed)
    pool = sorted(among) if among is not None else sorted(graph.vertices())
    if len(pool) < 2:
        raise GraphError("need at least two candidate vertices")
    added = 0
    attempts = 0
    while added < num_edges and attempts < 20 * num_edges + 100:
        attempts += 1
        u, v = rng.choice(pool), rng.choice(pool)
        if u == v or graph.has_edge(u, v):
            continue
        w = rng.randint(1, max_weight) if max_weight > 1 else 1
        graph.add_edge(u, v, w)
        added += 1
    return graph


def ensure_connected(graph: Graph, seed: Optional[int] = None) -> Graph:
    """Connect all components by bridging each to the largest one.

    Mutates and returns ``graph``.  Bridge edges get weight 1 and join a
    random vertex of each smaller component to a random vertex of the
    largest — a minimal perturbation of the generated topology.
    """
    rng = random.Random(seed)
    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    main = sorted(components[0])
    for comp in components[1:]:
        graph.merge_edge(rng.choice(main), rng.choice(sorted(comp)), 1)
    return graph


def random_weights(
    graph: Graph,
    max_weight: int,
    seed: Optional[int] = None,
) -> Graph:
    """Re-draw every edge weight uniformly from ``1..max_weight``.

    The paper's Web graph carries weights in {1, 2}; this helper applies
    such weightings to any generated topology.  Mutates and returns
    ``graph``.
    """
    rng = random.Random(seed)
    for u, v, _ in list(graph.edges()):
        graph.add_edge(u, v, rng.randint(1, max_weight))
    return graph
