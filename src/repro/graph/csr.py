"""Compressed sparse row (CSR) view of a graph.

Query processing (Algorithm 1) runs Dijkstra over ``G_k`` many thousands of
times; a packed numpy CSR layout with dense ``0..n-1`` ids is markedly
faster to scan than dict-of-dict adjacency and is what a C++ implementation
would use.  The view is immutable — build it once after ``G_k`` is fixed.

This is the adjacency backing the fast query engine
(``ISLabelIndex.build(..., engine="fast")``): :class:`repro.core.fastlabels.
FastEngine` freezes ``G_k`` into one :class:`CSRGraph` at index-build time
and runs both directions of the label-seeded bidirectional Dijkstra over
``indptr/indices/weights`` with dense-int distance maps.  Construction is
vectorized — one pass collects the edge list, then ``np.lexsort`` /
``np.bincount`` build the arrays without per-vertex Python loops.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = ["CSRGraph", "CSRDiGraph"]


class CSRGraph:
    """Immutable CSR adjacency of an undirected weighted graph.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays: the neighbours of dense vertex ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` with matching ``weights``,
        sorted by dense neighbour id.
    id_of, dense_of:
        Mappings between original vertex ids and dense ``0..n-1`` ids.
        Dense ids follow ascending original-id order, so the dense id of
        ``v`` is also ``np.searchsorted(ids_array, v)``.
    ids_array:
        ``id_of`` as a sorted ``int64`` array (for vectorized membership
        and dense translation via ``searchsorted``).
    """

    __slots__ = ("indptr", "indices", "weights", "id_of", "dense_of", "ids_array")

    def __init__(self, graph: Graph) -> None:
        order = graph.sorted_vertices()
        self.dense_of: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self.id_of: List[int] = order
        self.ids_array = np.array(order, dtype=np.int64)
        n = len(order)
        m = graph.num_edges
        if m == 0:
            self.indptr = np.zeros(n + 1, dtype=np.int64)
            self.indices = np.empty(0, dtype=np.int64)
            self.weights = np.empty(0, dtype=np.int64)
            return

        # One pass over the edge list, then vectorized assembly: map
        # endpoints to dense ids, mirror each edge, sort by (src, dst) and
        # count-by-source to get indptr.
        eu, ev, ew = zip(*graph.edges())
        du = np.searchsorted(self.ids_array, np.array(eu, dtype=np.int64))
        dv = np.searchsorted(self.ids_array, np.array(ev, dtype=np.int64))
        wts = np.array(ew, dtype=np.int64)

        src = np.concatenate([du, dv])
        dst = np.concatenate([dv, du])
        both = np.concatenate([wts, wts])
        perm = np.lexsort((dst, src))
        self.indices = dst[perm]
        self.weights = both[perm]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr

    @classmethod
    def from_arrays(
        cls,
        ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> "CSRGraph":
        """Adopt prebuilt CSR arrays (heap or ``np.memmap`` views).

        ``ids`` must be the sorted original vertex ids; the CSR triple must
        follow the same conventions ``__init__`` produces.  No copies are
        made — this is the zero-copy snapshot loading path.
        """
        view = cls.__new__(cls)
        view.ids_array = ids
        view.id_of = ids.tolist()
        view.dense_of = {v: i for i, v in enumerate(view.id_of)}
        view.indptr = indptr
        view.indices = indices
        view.weights = weights
        return view

    @property
    def num_vertices(self) -> int:
        return len(self.id_of)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def has_vertex(self, v: int) -> bool:
        """True if original vertex id ``v`` is present."""
        return v in self.dense_of

    def neighbors_dense(self, i: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(dense neighbour, weight)`` of dense vertex ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        idx = self.indices
        wts = self.weights
        for p in range(start, stop):
            yield int(idx[p]), int(wts[p])

    def neighbor_slices(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy views of the neighbour/weight arrays of dense vertex ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:stop], self.weights[start:stop]

    def degree_dense(self, i: int) -> int:
        return int(self.indptr[i + 1] - self.indptr[i])

    def dense(self, v: int) -> int:
        """Dense id of original vertex ``v``."""
        try:
            return self.dense_of[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in CSR graph") from None

    def original(self, i: int) -> int:
        """Original id of dense vertex ``i``."""
        return self.id_of[i]

    def nbytes(self) -> int:
        """Approximate memory footprint of the CSR arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes)


class CSRDiGraph:
    """Immutable per-direction CSR views of a digraph.

    The directed fast engine's Type-2 search (§8.2) walks out-arcs forwards
    from the source seeds and in-arcs backwards from the target seeds, so
    the freeze builds *two* CSR layouts over one dense id space: the
    forward arrays (``indptr/indices/weights``, successors of each vertex)
    and the transposed copy (``rindptr/rindices/rweights``, predecessors).
    Both are assembled vectorially from one pass over the arc list, exactly
    like :class:`CSRGraph` — the transpose is just the same triple sorted
    by head instead of tail.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "rindptr",
        "rindices",
        "rweights",
        "id_of",
        "dense_of",
        "ids_array",
    )

    def __init__(self, graph: DiGraph) -> None:
        order = sorted(graph.vertices())
        self.dense_of: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self.id_of: List[int] = order
        self.ids_array = np.array(order, dtype=np.int64)
        n = len(order)
        if graph.num_edges == 0:
            self.indptr = np.zeros(n + 1, dtype=np.int64)
            self.indices = np.empty(0, dtype=np.int64)
            self.weights = np.empty(0, dtype=np.int64)
            self.rindptr = np.zeros(n + 1, dtype=np.int64)
            self.rindices = np.empty(0, dtype=np.int64)
            self.rweights = np.empty(0, dtype=np.int64)
            return

        eu, ev, ew = zip(*graph.edges())
        tails = np.searchsorted(self.ids_array, np.array(eu, dtype=np.int64))
        heads = np.searchsorted(self.ids_array, np.array(ev, dtype=np.int64))
        wts = np.array(ew, dtype=np.int64)

        perm = np.lexsort((heads, tails))
        self.indices = heads[perm]
        self.weights = wts[perm]
        self.indptr = self._indptr_from(tails, n)

        rperm = np.lexsort((tails, heads))
        self.rindices = tails[rperm]
        self.rweights = wts[rperm]
        self.rindptr = self._indptr_from(heads, n)

    @staticmethod
    def _indptr_from(sources: np.ndarray, n: int) -> np.ndarray:
        counts = np.bincount(sources, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr

    @classmethod
    def from_arrays(
        cls,
        ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        rindptr: np.ndarray,
        rindices: np.ndarray,
        rweights: np.ndarray,
    ) -> "CSRDiGraph":
        """Adopt prebuilt forward + transposed CSR arrays (zero-copy)."""
        view = cls.__new__(cls)
        view.ids_array = ids
        view.id_of = ids.tolist()
        view.dense_of = {v: i for i, v in enumerate(view.id_of)}
        view.indptr = indptr
        view.indices = indices
        view.weights = weights
        view.rindptr = rindptr
        view.rindices = rindices
        view.rweights = rweights
        return view

    @property
    def num_vertices(self) -> int:
        return len(self.id_of)

    @property
    def num_arcs(self) -> int:
        return len(self.indices)

    def has_vertex(self, v: int) -> bool:
        """True if original vertex id ``v`` is present."""
        return v in self.dense_of

    def successors_dense(self, i: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(dense head, weight)`` of dense vertex ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        for p in range(start, stop):
            yield int(self.indices[p]), int(self.weights[p])

    def predecessors_dense(self, i: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(dense tail, weight)`` of dense vertex ``i``."""
        start, stop = int(self.rindptr[i]), int(self.rindptr[i + 1])
        for p in range(start, stop):
            yield int(self.rindices[p]), int(self.rweights[p])

    def dense(self, v: int) -> int:
        """Dense id of original vertex ``v``."""
        try:
            return self.dense_of[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in CSR graph") from None

    def original(self, i: int) -> int:
        """Original id of dense vertex ``i``."""
        return self.id_of[i]

    def nbytes(self) -> int:
        """Approximate memory footprint of both direction's arrays."""
        return int(
            self.indptr.nbytes
            + self.indices.nbytes
            + self.weights.nbytes
            + self.rindptr.nbytes
            + self.rindices.nbytes
            + self.rweights.nbytes
        )
