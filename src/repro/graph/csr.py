"""Compressed sparse row (CSR) view of a graph.

Query processing (Algorithm 1) runs Dijkstra over ``G_k`` many thousands of
times; a packed numpy CSR layout with dense ``0..n-1`` ids is markedly
faster to scan than dict-of-dict adjacency and is what a C++ implementation
would use.  The view is immutable — build it once after ``G_k`` is fixed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable CSR adjacency of an undirected weighted graph.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays: the neighbours of dense vertex ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` with matching ``weights``.
    id_of, dense_of:
        Mappings between original vertex ids and dense ``0..n-1`` ids.
    """

    __slots__ = ("indptr", "indices", "weights", "id_of", "dense_of")

    def __init__(self, graph: Graph) -> None:
        order = graph.sorted_vertices()
        self.dense_of: Dict[int, int] = {v: i for i, v in enumerate(order)}
        self.id_of: List[int] = order
        n = len(order)
        degrees = np.zeros(n + 1, dtype=np.int64)
        for i, v in enumerate(order):
            degrees[i + 1] = graph.degree(v)
        self.indptr = np.cumsum(degrees)
        m2 = int(self.indptr[-1])
        self.indices = np.empty(m2, dtype=np.int64)
        self.weights = np.empty(m2, dtype=np.int64)
        pos = 0
        for v in order:
            for u, w in sorted(graph.neighbors(v).items()):
                self.indices[pos] = self.dense_of[u]
                self.weights[pos] = w
                pos += 1

    @property
    def num_vertices(self) -> int:
        return len(self.id_of)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def has_vertex(self, v: int) -> bool:
        """True if original vertex id ``v`` is present."""
        return v in self.dense_of

    def neighbors_dense(self, i: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(dense neighbour, weight)`` of dense vertex ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        idx = self.indices
        wts = self.weights
        for p in range(start, stop):
            yield int(idx[p]), int(wts[p])

    def neighbor_slices(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy views of the neighbour/weight arrays of dense vertex ``i``."""
        start, stop = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:stop], self.weights[start:stop]

    def degree_dense(self, i: int) -> int:
        return int(self.indptr[i + 1] - self.indptr[i])

    def dense(self, v: int) -> int:
        """Dense id of original vertex ``v``."""
        try:
            return self.dense_of[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in CSR graph") from None

    def original(self, i: int) -> int:
        """Original id of dense vertex ``i``."""
        return self.id_of[i]

    def nbytes(self) -> int:
        """Approximate memory footprint of the CSR arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes)
