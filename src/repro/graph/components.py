"""Connected components (used to extract the largest component, §7).

The paper extracts the largest connected component of the Web dataset before
indexing; our dataset builders do the same, and Type-1 query handling (§5.2)
depends on components that sit entirely below level ``k``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.graph.graph import Graph

__all__ = [
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "component_of",
]


def component_of(graph: Graph, source: int) -> Set[int]:
    """Vertices reachable from ``source`` (BFS, weights ignored)."""
    seen = {source}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in seen:
                seen.add(u)
                queue.append(u)
    return seen


def connected_components(graph: Graph) -> List[Set[int]]:
    """All connected components, largest first (ties broken arbitrarily)."""
    remaining = set(graph.vertices())
    components: List[Set[int]] = []
    while remaining:
        source = next(iter(remaining))
        comp = component_of(graph, source)
        components.append(comp)
        remaining -= comp
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest component (paper §7 preprocessing)."""
    if graph.num_vertices == 0:
        return Graph()
    return graph.induced_subgraph(connected_components(graph)[0])


def is_connected(graph: Graph) -> bool:
    """True iff the graph has at most one connected component."""
    if graph.num_vertices == 0:
        return True
    source = next(iter(graph.vertices()))
    return len(component_of(graph, source)) == graph.num_vertices
