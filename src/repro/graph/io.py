"""Graph file formats.

Two formats are provided:

* a human-readable weighted edge list (``u v w`` per line, ``#`` comments),
  matching the common SNAP-style distribution format of the paper's
  datasets; and
* a compact little-endian binary adjacency format mirroring how the paper
  stores graphs on disk ("adjacency list representation ... vertices are
  ordered in ascending order of their vertex IDs", §2), which is also the
  layout the external-memory substrate assumes.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_binary_adjacency",
    "read_binary_adjacency",
]

_MAGIC = b"ISLG"
_HEADER = struct.Struct("<4sQQ")  # magic, |V|, |E|
_VERTEX = struct.Struct("<qq")  # vertex id, degree
_SLOT = struct.Struct("<qq")  # neighbour id, weight

PathLike = Union[str, Path]


def write_edge_list(graph: Union[Graph, DiGraph], path: PathLike) -> None:
    """Write ``u v w`` lines; undirected edges are written once (u < v)."""
    directed = isinstance(graph, DiGraph)
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# repro edge list directed={int(directed)}\n")
        fh.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for v in sorted(graph.vertices()):
            fh.write(f"v {v}\n")
        for u, v, w in sorted(graph.edges()):
            fh.write(f"{u} {v} {w}\n")


def read_edge_list(path: PathLike, directed: bool = False) -> Union[Graph, DiGraph]:
    """Read an edge list written by :func:`write_edge_list`.

    Lines starting with ``#`` are comments; ``v <id>`` lines declare
    (possibly isolated) vertices; other lines are ``u v [w]``.
    """
    graph: Union[Graph, DiGraph] = DiGraph() if directed else Graph()
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v":
                graph.add_vertex(int(parts[1]))
                continue
            if len(parts) == 2:
                u, v, w = int(parts[0]), int(parts[1]), 1
            elif len(parts) == 3:
                u, v, w = int(parts[0]), int(parts[1]), int(parts[2])
            else:
                raise StorageError(f"{path}:{lineno}: malformed edge line {line!r}")
            graph.merge_edge(u, v, w)
    return graph


def write_binary_adjacency(graph: Graph, path: PathLike) -> int:
    """Write the compact binary adjacency file; returns bytes written."""
    written = 0
    with open(path, "wb") as fh:
        written += fh.write(_HEADER.pack(_MAGIC, graph.num_vertices, graph.num_edges))
        for v in graph.sorted_vertices():
            row = graph.neighbors(v)
            written += fh.write(_VERTEX.pack(v, len(row)))
            for u, w in sorted(row.items()):
                written += fh.write(_SLOT.pack(u, w))
    return written


def read_binary_adjacency(path: PathLike) -> Graph:
    """Read a file produced by :func:`write_binary_adjacency`."""
    graph = Graph()
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StorageError(f"{path}: truncated header")
        magic, num_vertices, num_edges = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError(f"{path}: bad magic {magic!r}")
        for _ in range(num_vertices):
            vh = fh.read(_VERTEX.size)
            if len(vh) != _VERTEX.size:
                raise StorageError(f"{path}: truncated vertex header")
            v, degree = _VERTEX.unpack(vh)
            graph.add_vertex(v)
            for _ in range(degree):
                slot = fh.read(_SLOT.size)
                if len(slot) != _SLOT.size:
                    raise StorageError(f"{path}: truncated adjacency slot")
                u, w = _SLOT.unpack(slot)
                graph.merge_edge(v, u, w)
    if graph.num_vertices != num_vertices or graph.num_edges != num_edges:
        raise StorageError(
            f"{path}: header promised |V|={num_vertices}, |E|={num_edges}; "
            f"got |V|={graph.num_vertices}, |E|={graph.num_edges}"
        )
    return graph
