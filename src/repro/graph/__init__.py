"""Graph substrate: data structures, generators, stats and file formats."""

from repro.graph.components import (
    component_of,
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.csr import CSRDiGraph, CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.io import (
    read_binary_adjacency,
    read_edge_list,
    write_binary_adjacency,
    write_edge_list,
)
from repro.graph.stats import GraphStats, graph_stats, human_bytes
from repro.graph.validation import validate_digraph, validate_graph

__all__ = [
    "Graph",
    "DiGraph",
    "CSRGraph",
    "CSRDiGraph",
    "GraphStats",
    "graph_stats",
    "human_bytes",
    "connected_components",
    "largest_connected_component",
    "component_of",
    "is_connected",
    "validate_graph",
    "validate_digraph",
    "read_edge_list",
    "write_edge_list",
    "read_binary_adjacency",
    "write_binary_adjacency",
]
