"""Dataset statistics in the shape of the paper's Table 2.

Table 2 reports ``|V|``, ``|E|``, average degree, max degree, and on-disk
size for each dataset.  :func:`graph_stats` computes the same columns;
``disk_size_bytes`` estimates the adjacency-list file footprint the same way
the external substrate lays it out (one 8-byte id + 8-byte weight per
directed edge slot plus an 8-byte degree header per vertex).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph

__all__ = ["GraphStats", "graph_stats", "human_bytes"]

_BYTES_PER_EDGE_SLOT = 16  # neighbour id + weight, 8 bytes each
_BYTES_PER_VERTEX_HEADER = 16  # vertex id + degree


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one dataset (one Table 2 row)."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int
    disk_size_bytes: int

    def row(self) -> tuple:
        """Values in Table 2 column order."""
        return (
            self.num_vertices,
            self.num_edges,
            round(self.avg_degree, 2),
            self.max_degree,
            human_bytes(self.disk_size_bytes),
        )


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the Table 2 columns for ``graph``."""
    n = graph.num_vertices
    m = graph.num_edges
    max_deg = max((graph.degree(v) for v in graph.vertices()), default=0)
    avg_deg = (2.0 * m / n) if n else 0.0
    disk = n * _BYTES_PER_VERTEX_HEADER + 2 * m * _BYTES_PER_EDGE_SLOT
    return GraphStats(n, m, avg_deg, max_deg, disk)


def human_bytes(num: float) -> str:
    """Render a byte count the way the paper does (``5.6 GB``, ``200 MB``)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(num) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(num)} {unit}"
            return f"{num:.1f} {unit}"
        num /= 1024.0
    raise AssertionError("unreachable")
